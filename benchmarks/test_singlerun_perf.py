"""Single-run hot-path benchmark: wall clock behind a byte-identity gate.

Runs the canonical two-tenant FleetIO cell (ycsb+terasort, seed 0, 8
simulated seconds) several times, asserts the telemetry is **byte-equal**
to the digest recorded before the hot-path optimizations landed, and
writes ``BENCH_singlerun.json`` with the per-subsystem profile and the
measured speedup over the pre-optimization baseline.

Two assertions, two strictness levels:

* **Byte equality is unconditional.**  The optimizations (batched
  multi-agent inference, vectorized GAE, event-pool/FTL fast paths,
  cdf-searchsorted sampling) are only admissible because they provably
  change nothing — the telemetry digest must match on any host, every
  run.  A digest mismatch means an optimization altered simulation
  behaviour and must be treated as a correctness bug, not noise.
* **The speedup gate is host-gated.**  ``BASELINE_WALL_S`` was measured
  on the development host in the same session as the optimized numbers
  (best of 5 serial runs of this exact cell with the optimizations
  stashed: 3.194 s, vs 1.434 s optimized — 2.2x).  Wall clock on shared
  CI is noisy and hardware-dependent, so the >= 1.3x assertion is
  skipped-with-reason on small hosts (< 4 cores) or when
  ``REPRO_SINGLERUN_GATE=off`` — the digest check and the JSON artifact
  still run in that mode.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from benchmarks.common import print_expectation, print_header
from repro.parallel import ExperimentCell, warm_policy_cache
from repro.parallel.worker import run_cell
from repro.profiling import format_profile

#: The canonical single-run cell: the standard ycsb+terasort collocation
#: under the full FleetIO policy (RL agents + harvesting + GC), long
#: enough that steady-state hot paths dominate process startup.
CELL = ExperimentCell(
    scenario="ycsb+terasort",
    workloads=("ycsb", "terasort"),
    policy="fleetio",
    seed=0,
    duration_s=8.0,
    measure_after_s=2.0,
)

#: SHA-256 of the cell's telemetry (results CSV + window CSV).  The
#: hot-path code must reproduce it byte-for-byte.  History: the original
#: reference (7f6ff59c...) was captured on the unoptimized tree at
#: commit ccdaa85 and survived the PR 4 optimizations unchanged; the
#: collocation-sampler fix (``SAMPLER_VERSION`` 2 — remainder channels
#: are no longer stranded) intentionally changed the canonical
#: pre-trained policy artifact, so the digest was re-captured with the
#: regenerated policy.  Within a sampler version the digest remains a
#: hard byte-identity gate.
REFERENCE_DIGEST = "3636a8ff08a0eca64e96b13051d38efcf6dc4c486582c47a2d8344df916eee86"

#: Pre-optimization wall clock for CELL on the benchmark host — best of 5
#: serial runs with the optimizations stashed, measured back-to-back with
#: the optimized runs so host load cancels out.  (An earlier capture read
#: 2.657 s under lighter host load; same-session A/B is the honest
#: comparison, so the paired measurement is recorded.)
BASELINE_WALL_S = 3.194

#: Required wall-clock improvement over BASELINE_WALL_S.
MIN_SPEEDUP = 1.3

#: Timed repetitions; the best round is scored (minimum is the standard
#: noise-robust statistic for wall-clock benchmarks).
ROUNDS = 3

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_singlerun.json"


@pytest.fixture(scope="module")
def outcomes():
    warm_policy_cache([CELL])
    # One unscored warm-up run so imports, JIT-able numpy internals, and
    # OS page cache effects don't land in round 1.
    run_cell(CELL, profile=False)
    return [run_cell(CELL, profile=True) for _ in range(ROUNDS)]


def test_singlerun_telemetry_matches_reference(outcomes):
    """Every round's telemetry must equal the pre-optimization digest."""
    for outcome in outcomes:
        assert outcome.ok, outcome.error
        digest = hashlib.sha256(outcome.telemetry).hexdigest()
        assert digest == REFERENCE_DIGEST, (
            f"telemetry digest {digest} != reference {REFERENCE_DIGEST}: "
            "an optimization changed simulation behaviour"
        )


def test_singlerun_wall_clock_and_bench_json(benchmark, outcomes):
    def regenerate():
        cores = os.cpu_count() or 1
        walls = [outcome.wall_s for outcome in outcomes]
        best = min(walls)
        speedup = BASELINE_WALL_S / best if best else 0.0
        outcome = outcomes[walls.index(best)]
        digest = hashlib.sha256(outcome.telemetry).hexdigest()
        print_header(
            "Single-run hot path",
            f"{CELL.cell_id}, {CELL.duration_s:.0f}s simulated, "
            f"best of {ROUNDS} rounds",
        )
        print(f"  baseline:  {BASELINE_WALL_S:6.2f}s  (pre-optimization)")
        print(f"  optimized: {best:6.2f}s  (walls: "
              + ", ".join(f"{w:.2f}" for w in walls) + ")")
        print(f"  speedup:   {speedup:6.2f}x")
        print()
        print(format_profile(outcome.profile, total_label="sim.event_loop"))
        payload = {
            "cell": CELL.cell_id,
            "duration_s": CELL.duration_s,
            "measure_after_s": CELL.measure_after_s,
            "rounds": ROUNDS,
            "cpu_count": cores,
            "walls_s": [round(w, 3) for w in walls],
            "wall_s": round(best, 3),
            "baseline_wall_s": BASELINE_WALL_S,
            "speedup": round(speedup, 3),
            "telemetry_bytes": len(outcome.telemetry),
            "telemetry_sha256": digest,
            "telemetry_byte_equal": digest == REFERENCE_DIGEST,
            "profile": outcome.profile,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_PATH.name}")
        return payload

    payload = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_expectation(
        f"optimized single run >= {MIN_SPEEDUP}x faster than baseline",
        f"{payload['speedup']:.2f}x on {payload['cpu_count']} cores",
    )
    # Byte equality is unconditional — never skipped.
    assert payload["telemetry_byte_equal"]
    assert payload["profile"]["counters"].get("rl.batched_decisions", 0) > 0, (
        "batched inference path never ran — the benchmark is no longer "
        "exercising the optimization it exists to guard"
    )
    if os.environ.get("REPRO_SINGLERUN_GATE", "").lower() == "off":
        pytest.skip(
            "REPRO_SINGLERUN_GATE=off: digest-check mode "
            "(BENCH_singlerun.json still records the measured numbers)"
        )
    if payload["cpu_count"] < 4:
        pytest.skip(
            f"speedup gate needs >= 4 cores, host has {payload['cpu_count']}: "
            "shared small hosts are too noisy for a wall-clock assertion "
            "(BENCH_singlerun.json still records the measured numbers)"
        )
    assert payload["speedup"] >= MIN_SPEEDUP
