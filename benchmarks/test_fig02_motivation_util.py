"""Figure 2 — motivation: SSD bandwidth utilization, HW vs SW isolation.

Paper: software isolation improves average bandwidth utilization by up to
1.52x (1.39x on average) over hardware isolation; hardware isolation never
fully utilizes the SSD bandwidth (visible in the P95 whiskers).
"""

import pytest

from benchmarks.common import (
    STANDARD_PAIRS,
    pair_label,
    pair_results,
    print_expectation,
    print_header,
)


@pytest.fixture(scope="module")
def util_rows():
    rows = {}
    for pair in STANDARD_PAIRS:
        results = pair_results(*pair, policies=("hardware", "software"))
        rows[pair] = {
            policy: (result.avg_utilization, result.p95_utilization)
            for policy, result in results.items()
        }
    return rows


def test_fig02_bandwidth_utilization(benchmark, util_rows):
    def regenerate():
        print_header(
            "Figure 2", "SSD bandwidth utilization (avg, P95) per isolation approach"
        )
        print(f"{'pair':>22s} {'HW avg':>8s} {'HW p95':>8s} {'SW avg':>8s} {'SW p95':>8s} {'SW/HW':>7s}")
        ratios = []
        for pair, row in util_rows.items():
            hw_avg, hw_p95 = row["hardware"]
            sw_avg, sw_p95 = row["software"]
            ratio = sw_avg / hw_avg if hw_avg else 0.0
            ratios.append(ratio)
            print(
                f"{pair_label(pair):>22s} {hw_avg:8.2%} {hw_p95:8.2%} "
                f"{sw_avg:8.2%} {sw_p95:8.2%} {ratio:7.2f}x"
            )
        return max(ratios), sum(ratios) / len(ratios)

    max_ratio, avg_ratio = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_expectation(
        "SW/HW utilization up to 1.52x, 1.39x on average",
        f"SW/HW utilization up to {max_ratio:.2f}x, {avg_ratio:.2f}x on average",
    )
    # Shape assertions: software isolation wins utilization everywhere.
    assert avg_ratio > 1.1
    assert max_ratio > 1.2


def test_fig02_hardware_never_saturates(benchmark, util_rows):
    """Hardware isolation's P95 utilization stays clearly below 100%."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for pair, row in util_rows.items():
        _hw_avg, hw_p95 = row["hardware"]
        assert hw_p95 < 0.9, pair
