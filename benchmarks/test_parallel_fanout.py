"""Parallel fan-out benchmark: speedup, determinism, and hot-path profile.

Runs one experiment matrix (2 policies x 2 seeds over the ycsb+terasort
collocation) serially and with 4 workers, asserts the merged telemetry
is byte-identical, and writes ``BENCH_parallel.json`` with the measured
speedup and the per-subsystem wall-clock profile.

The >=2x speedup assertion is gated on the host actually having >= 4
CPU cores: on a 1-core CI box fan-out cannot beat serial (process
startup is pure overhead), and pretending otherwise would make the
benchmark flaky rather than informative.  The byte-equality assertion is
unconditional — determinism must hold on any hardware.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.common import print_expectation, print_header
from repro.parallel import (
    ExperimentMatrix,
    ParallelRunner,
    run_serial,
    warm_policy_cache,
)
from repro.profiling import format_profile

MATRIX = ExperimentMatrix.from_workloads(
    ["ycsb", "terasort"],
    ["hardware", "software"],
    seeds=(0, 1),
    duration_s=3.0,
    measure_after_s=1.0,
)
WORKERS = 4
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


@pytest.fixture(scope="module")
def sweeps():
    cells = MATRIX.cells()
    warm_policy_cache(cells)
    serial = run_serial(cells)
    runner = ParallelRunner(workers=WORKERS)
    parallel = runner.run(cells)
    return serial, parallel


def test_parallel_matches_serial_byte_for_byte(benchmark, sweeps):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial, parallel = sweeps
    assert serial.ok, [f.describe() for f in serial.failures]
    assert parallel.ok, [f.describe() for f in parallel.failures]
    assert len(parallel.succeeded) == len(MATRIX)
    assert serial.telemetry == parallel.telemetry
    assert len(parallel.telemetry) > 0


def test_parallel_speedup_and_bench_json(benchmark, sweeps):
    serial, parallel = sweeps

    def regenerate():
        cores = os.cpu_count() or 1
        speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
        profile = parallel.profile
        print_header(
            "Parallel fan-out",
            f"{len(MATRIX)} cells, {parallel.workers} workers, {cores} cores",
        )
        print(f"  serial:   {serial.wall_s:6.1f}s")
        print(f"  parallel: {parallel.wall_s:6.1f}s  ({parallel.mode})")
        print(f"  speedup:  {speedup:6.2f}x")
        print()
        print(format_profile(profile, total_label="sim.event_loop"))
        payload = {
            "cells": [cell.cell_id for cell in MATRIX.cells()],
            # ``workers`` is the sweep's *effective* worker count — the
            # runner caps the request at the host's core count, so the
            # recorded number reflects what actually ran.
            "workers": parallel.workers,
            "workers_requested": WORKERS,
            "cpu_count": cores,
            "start_method": parallel.mode,
            "serial_wall_s": round(serial.wall_s, 3),
            "parallel_wall_s": round(parallel.wall_s, 3),
            "speedup": round(speedup, 3),
            "telemetry_bytes": len(parallel.telemetry),
            "telemetry_sha256": parallel.telemetry_digest,
            "telemetry_byte_equal": serial.telemetry == parallel.telemetry,
            "profile": profile,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_PATH.name}")
        return payload

    payload = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_expectation(
        "4-worker sweep >= 2x faster than serial (on >= 4 cores)",
        f"{payload['speedup']:.2f}x on {payload['cpu_count']} cores",
    )
    assert payload["telemetry_byte_equal"]
    assert payload["profile"]["timers"]["sim.event_loop"]["calls"] == len(MATRIX)
    if payload["cpu_count"] < 4:
        pytest.skip(
            f"speedup gate needs >= 4 cores, host has {payload['cpu_count']}: "
            "fan-out cannot beat serial without parallel hardware "
            "(BENCH_parallel.json still records the measured numbers)"
        )
    assert payload["speedup"] >= 2.0
