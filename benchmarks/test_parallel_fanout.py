"""Parallel fan-out benchmark: speedup, determinism, and warm amortization.

Runs one experiment matrix (2 policies x 2 seeds over the ycsb+terasort
collocation) four ways —

* ``serial/cold``   — in-process, snapshots off (every cell pays build+warm)
* ``parallel/cold`` — 4 fork-per-cell workers, snapshots off
* ``serial/warm``   — in-process, snapshots on (first cell per key warms,
  the rest restore; this pass also primes the parent's snapshot cache)
* ``pool/warm``     — persistent worker pool, snapshots on (forked workers
  inherit the primed cache, so no cell pays build+warm)

— asserts all four merged telemetries are **byte-identical**, and writes
``BENCH_parallel.json`` with the measured speedups plus *amortized
per-cell metrics*: ``build_ns``/``warm_ns``/``restore_ns`` and snapshot
hit/miss counters per cell, so the speedup gate reports where the time
went instead of one opaque wall number.

Gates follow the established idiom: byte equality is unconditional;
wall-clock gates are ``pytest.skip``-with-reason on hosts that cannot
express the effect (< 4 cores for fan-out, a non-fork start method for
snapshot inheritance).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.common import print_expectation, print_gate, print_header
from repro.harness import snapshots
from repro.parallel import (
    ExperimentMatrix,
    ParallelRunner,
    run_serial,
    warm_policy_cache,
)
from repro.profiling import format_profile

#: The canonical 4-cell matrix.  Cells are deliberately short (1.0
#: simulated second): the consumers this amortization serves —
#: adversarial candidate evaluation and pretraining fan-out — run many
#: short episodes, the regime where the fixed build+warm cost is a large
#: share of every cell and snapshot reuse pays off most.
MATRIX = ExperimentMatrix.from_workloads(
    ["ycsb", "terasort"],
    ["hardware", "software"],
    seeds=(0, 1),
    duration_s=1.0,
    measure_after_s=0.3,
)
WORKERS = 4
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: Required wall-clock improvement of the amortized sweep (snapshot reuse
#: + persistent pool) over the cold process-per-cell sweep.
MIN_AMORTIZED_SPEEDUP = 1.5


def _per_cell_metrics(sweep):
    """Amortization columns for every cell of a profiled sweep."""
    rows = []
    for outcome in sweep.outcomes:
        timers = outcome.profile.get("timers", {})
        counters = outcome.profile.get("counters", {})

        def ns(name):
            return timers.get(name, {}).get("total_ns", 0)

        rows.append(
            {
                "cell": outcome.cell.cell_id,
                "wall_s": round(outcome.wall_s, 3),
                "build_ns": ns("harness.build"),
                "warm_ns": ns("harness.warm"),
                "save_ns": ns("snapshot.save"),
                "restore_ns": ns("snapshot.restore"),
                "snapshot_hits": counters.get("snapshot.hits", 0),
                "snapshot_misses": counters.get("snapshot.misses", 0),
            }
        )
    return rows


@pytest.fixture(scope="module")
def sweeps():
    cells = MATRIX.cells()
    warm_policy_cache(cells)
    prior = os.environ.get("REPRO_SNAPSHOTS")
    try:
        os.environ["REPRO_SNAPSHOTS"] = "off"
        serial_cold = run_serial(cells)
        parallel_cold = ParallelRunner(workers=WORKERS).run(cells)
        os.environ["REPRO_SNAPSHOTS"] = "mem"
        snapshots.clear_memory_cache()
        snapshots.reset_stats()
        # The warm serial pass pays one build+warm per distinct cache key
        # and primes this process's snapshot cache ...
        serial_warm = run_serial(cells)
        # ... which the pool's forked workers inherit: no cell re-warms.
        pool_runner = ParallelRunner(workers=WORKERS, pool=True)
        pool_warm = pool_runner.run(cells)
    finally:
        snapshots.clear_memory_cache()
        if prior is None:
            os.environ.pop("REPRO_SNAPSHOTS", None)
        else:
            os.environ["REPRO_SNAPSHOTS"] = prior
    return serial_cold, parallel_cold, serial_warm, pool_warm


def test_all_modes_byte_identical(benchmark, sweeps):
    """Serial vs parallel, snapshots off vs on, fork-per-cell vs pool:
    the merged telemetry must not change by a single byte."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial_cold, parallel_cold, serial_warm, pool_warm = sweeps
    for sweep in sweeps:
        assert sweep.ok, [f.describe() for f in sweep.failures]
        assert len(sweep.succeeded) == len(MATRIX)
    assert len(serial_cold.telemetry) > 0
    assert serial_cold.telemetry == parallel_cold.telemetry
    assert serial_cold.telemetry == serial_warm.telemetry
    assert serial_cold.telemetry == pool_warm.telemetry


def test_parallel_speedup_and_bench_json(benchmark, sweeps):
    serial_cold, parallel_cold, serial_warm, pool_warm = sweeps

    def regenerate():
        cores = os.cpu_count() or 1
        speedup = (
            serial_cold.wall_s / parallel_cold.wall_s
            if parallel_cold.wall_s
            else 0.0
        )
        amortized_speedup = (
            parallel_cold.wall_s / pool_warm.wall_s if pool_warm.wall_s else 0.0
        )
        pool_counters = pool_warm.profile.get("counters", {})
        # Gate status is decided *before* the payload is written, so the
        # JSON a capped host records carries the reason its numbers are
        # not gate-quality (workers:1 vs workers_requested:4 used to
        # record speedup 0.506 with no explanation).
        capped = parallel_cold.workers < WORKERS
        if os.environ.get("REPRO_FANOUT_GATE", "on") == "off":
            reason = "REPRO_FANOUT_GATE=off"
        elif cores < 4:
            reason = (
                f"host has {cores} core(s); speedup gates need >= 4 — "
                "fan-out cannot beat serial without parallel hardware"
            )
        else:
            reason = None
        gate = "enforced" if reason is None else f"skipped({reason})"
        if reason is None and "fork" not in pool_warm.mode:
            amortized_gate = (
                f"skipped(start method {pool_warm.mode}: spawned pool "
                "workers cannot inherit the primed snapshot cache)"
            )
        else:
            amortized_gate = gate
        print_header(
            "Parallel fan-out",
            f"{len(MATRIX)} cells, {parallel_cold.workers} workers, "
            f"{cores} cores",
        )
        print(f"  serial/cold:   {serial_cold.wall_s:6.1f}s")
        print(f"  parallel/cold: {parallel_cold.wall_s:6.1f}s  "
              f"({parallel_cold.mode})")
        print(f"  serial/warm:   {serial_warm.wall_s:6.1f}s")
        print(f"  pool/warm:     {pool_warm.wall_s:6.1f}s  ({pool_warm.mode})")
        print(f"  speedup:       {speedup:6.2f}x  (cold fan-out vs serial)")
        print(f"  amortized:     {amortized_speedup:6.2f}x  "
              "(pool+snapshots vs cold fan-out)")
        print()
        print(format_profile(parallel_cold.profile, total_label="sim.event_loop"))
        payload = {
            "cells": [cell.cell_id for cell in MATRIX.cells()],
            # ``workers`` is the sweep's *effective* worker count — the
            # runner caps the request at the host's core count, so the
            # recorded number reflects what actually ran.
            "workers": parallel_cold.workers,
            "workers_requested": WORKERS,
            #: True when the runner's core cap reduced the request — the
            #: recorded walls then measure time-slicing, not fan-out.
            "capped": capped,
            "cpu_count": cores,
            "start_method": parallel_cold.mode,
            "gate": gate,
            "serial_wall_s": round(serial_cold.wall_s, 3),
            "parallel_wall_s": round(parallel_cold.wall_s, 3),
            "speedup": round(speedup, 3),
            "snapshots": {
                "serial_warm_wall_s": round(serial_warm.wall_s, 3),
                "pool_wall_s": round(pool_warm.wall_s, 3),
                "pool_mode": pool_warm.mode,
                "amortized_speedup": round(amortized_speedup, 3),
                "gate": amortized_gate,
                "hits": pool_counters.get("snapshot.hits", 0),
                "misses": pool_counters.get("snapshot.misses", 0),
            },
            "per_cell": {
                "cold": _per_cell_metrics(parallel_cold),
                "amortized": _per_cell_metrics(pool_warm),
            },
            "telemetry_bytes": len(parallel_cold.telemetry),
            "telemetry_sha256": parallel_cold.telemetry_digest,
            "telemetry_byte_equal": (
                serial_cold.telemetry == parallel_cold.telemetry
                and serial_cold.telemetry == serial_warm.telemetry
                and serial_cold.telemetry == pool_warm.telemetry
            ),
            "profile": parallel_cold.profile,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_PATH.name}")
        return payload

    payload = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_expectation(
        "4-worker sweep >= 2x faster than serial (on >= 4 cores); "
        f"pool+snapshots >= {MIN_AMORTIZED_SPEEDUP}x over cold fan-out",
        f"{payload['speedup']:.2f}x cold, "
        f"{payload['snapshots']['amortized_speedup']:.2f}x amortized "
        f"on {payload['cpu_count']} cores"
        + (" (workers capped at the core count)" if payload["capped"] else ""),
    )
    print_gate("fanout-speedup", payload["gate"])
    print_gate("amortized-speedup", payload["snapshots"]["gate"])
    assert payload["telemetry_byte_equal"]
    assert payload["profile"]["timers"]["sim.event_loop"]["calls"] == len(MATRIX)
    # Cold cells must show the full fixed cost, amortized cells none.
    for row in payload["per_cell"]["cold"]:
        assert row["warm_ns"] > 0 and row["snapshot_hits"] == 0, row
    if "fork" in payload["snapshots"]["pool_mode"]:
        assert payload["snapshots"]["hits"] == len(MATRIX)
        for row in payload["per_cell"]["amortized"]:
            assert row["snapshot_hits"] == 1, row
            assert row["warm_ns"] == 0, row
            assert row["restore_ns"] > 0, row
    # The skip decisions replay exactly what the payload recorded, so the
    # JSON's gate fields and the test's runtime behavior cannot drift.
    if payload["gate"] != "enforced":
        pytest.skip(
            f"{payload['gate']} — byte-equality was asserted; "
            "BENCH_parallel.json still records the measured numbers"
        )
    assert payload["speedup"] >= 2.0
    if payload["snapshots"]["gate"] != "enforced":
        pytest.skip(payload["snapshots"]["gate"])
    assert payload["snapshots"]["amortized_speedup"] >= MIN_AMORTIZED_SPEEDUP
