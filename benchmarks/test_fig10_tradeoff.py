"""Figure 10 — the headline tradeoff: utilization improvement vs P99.

Paper: FleetIO improves bandwidth utilization over Hardware Isolation by
up to 1.39x (1.30x avg) while keeping P99 within ~1.2x of the strongest
isolation; Software Isolation / Adaptive reach the best utilization but
pay 1.76x-2.03x P99; Hardware Isolation / SSDKeeper protect tails but
leave utilization on the table (at most 1.08x improvement).
"""

import numpy as np
import pytest

from benchmarks.common import (
    STANDARD_PAIRS,
    geomean,
    latency_name,
    pair_results,
    print_expectation,
    print_header,
)
from repro.harness import POLICIES


@pytest.fixture(scope="module")
def grid():
    return {pair: pair_results(*pair) for pair in STANDARD_PAIRS}


def _tradeoff_points(grid):
    """Per policy: (mean util improvement over HW, mean norm. P99)."""
    points = {}
    for policy in POLICIES:
        util_ratios, p99_ratios = [], []
        for pair, results in grid.items():
            hw = results["hardware"]
            res = results[policy]
            util_ratios.append(res.avg_utilization / max(hw.avg_utilization, 1e-9))
            lat = latency_name(pair)
            p99_ratios.append(
                res.vssd(lat).p99_latency_us / max(hw.vssd(lat).p99_latency_us, 1e-9)
            )
        points[policy] = (geomean(util_ratios), geomean(p99_ratios))
    return points


def test_fig10_tradeoff_scatter(benchmark, grid):
    def regenerate():
        points = _tradeoff_points(grid)
        print_header(
            "Figure 10",
            "bandwidth-utilization improvement vs P99 (both vs Hardware Isolation)",
        )
        print(f"{'policy':>12s} {'util impr.':>11s} {'norm. P99':>10s}")
        for policy, (util, p99) in points.items():
            print(f"{policy:>12s} {util:11.2f}x {p99:10.2f}x")
        return points

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fleetio_util, fleetio_p99 = points["fleetio"]
    software_util, software_p99 = points["software"]
    print_expectation(
        "FleetIO: ~1.30x util, P99 within ~1.2x of HW; "
        "SW: best util but 1.76x+ P99",
        f"FleetIO: {fleetio_util:.2f}x util, {fleetio_p99:.2f}x P99; "
        f"SW: {software_util:.2f}x util, {software_p99:.2f}x P99",
    )
    # The paper's qualitative claims:
    # 1. FleetIO improves utilization substantially over hardware-like
    #    policies...
    assert fleetio_util > 1.1
    assert fleetio_util > points["ssdkeeper"][0]
    # 2. ...while keeping tails far below software isolation's.
    assert fleetio_p99 < 0.6 * software_p99
    # 3. Software isolation has the best utilization.
    assert software_util >= fleetio_util
    # 4. No other policy achieves both (each is worse on one axis).
    for policy in ("hardware", "ssdkeeper", "adaptive", "software"):
        util, p99 = points[policy]
        assert util < fleetio_util or p99 > fleetio_p99


def test_fig10_fleetio_fraction_of_best_utilization(benchmark, grid):
    """Paper: FleetIO reaches ~93% of the best (software) utilization."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fractions = []
    for results in grid.values():
        fractions.append(
            results["fleetio"].avg_utilization
            / max(results["software"].avg_utilization, 1e-9)
        )
    fraction = float(np.mean(fractions))
    print(f"\nFleetIO reaches {fraction:.0%} of software isolation's utilization "
          "(paper: 93%)")
    assert fraction > 0.6
