"""Figure 17 — robustness: switching the collocated workload mid-run.

Paper: FleetIO-Transfer (tuned on one collocation, then the partner
workload switches) performs within 5% of FleetIO-Pretrained (tuned on
the evaluated combination directly) — the agents do not overfit to the
specific collocated workload.
"""

import pytest

from benchmarks.common import SEED, print_expectation, print_header
from repro.harness import Experiment, plans_for_pair, run_policy_comparison

#: (steady workload, initial partner, switched-to partner, steady is BW?)
SCENARIOS = (
    ("terasort", "vdi-web", "ycsb", True),
    ("mlprep", "vdi-web", "ycsb", True),
    ("pagerank", "vdi-web", "ycsb", True),
    ("vdi-web", "terasort", "mlprep", False),
    ("vdi-web", "mlprep", "pagerank", False),
    ("ycsb", "pagerank", "terasort", False),
)

TOTAL_S = 28.0
SWITCH_S = 12.0


def _run_transfer(steady, initial, switched, steady_is_bw, seed=SEED):
    if steady_is_bw:
        plans = plans_for_pair(initial, steady)
        switch_name = initial
    else:
        plans = plans_for_pair(steady, initial)
        switch_name = initial
    hw = run_policy_comparison(
        plans, policies=("hardware",), duration_s=8.0, measure_after_s=4.0, seed=seed
    )["hardware"]
    for plan in plans:
        if plan.slo_latency_us is None:
            plan.slo_latency_us = hw.vssd(plan.name).p99_latency_us
    experiment = Experiment(plans, "fleetio", seed=seed)
    experiment.build()
    experiment.schedule_workload_switch(switch_name, switched, at_s=SWITCH_S)
    experiment.reset_measurement_at(SWITCH_S + 2.0)
    return experiment.run(TOTAL_S, measure_after_s=2.0), plans


def _run_pretrained(steady, switched, steady_is_bw, slo_plans, seed=SEED):
    """The tuned-on-target baseline, with *identical* timing to the
    transfer run: same total duration and the same measurement window, so
    both runs observe the same device wear and GC maturity."""
    if steady_is_bw:
        plans = plans_for_pair(switched, steady)
    else:
        plans = plans_for_pair(steady, switched)
    for plan, src in zip(plans, slo_plans):
        plan.slo_latency_us = src.slo_latency_us
    experiment = Experiment(plans, "fleetio", seed=seed)
    return experiment.run(TOTAL_S, measure_after_s=SWITCH_S + 2.0)


@pytest.fixture(scope="module")
def robustness():
    rows = {}
    for steady, initial, switched, steady_is_bw in SCENARIOS:
        # P99 over a 12-second post-switch window is noisy (GC and phase
        # alignment); latency scenarios average two seeds.
        seeds = (SEED,) if steady_is_bw else (SEED, SEED + 1)
        t_metric, p_metric, t_util, p_util = [], [], [], []
        for seed in seeds:
            transfer, plans = _run_transfer(
                steady, initial, switched, steady_is_bw, seed=seed
            )
            pretrained = _run_pretrained(
                steady, switched, steady_is_bw, plans, seed=seed
            )
            if steady_is_bw:
                t_metric.append(transfer.vssd(steady).mean_bw_mbps)
                p_metric.append(pretrained.vssd(steady).mean_bw_mbps)
            else:
                t_metric.append(transfer.vssd(steady).p99_latency_us)
                p_metric.append(pretrained.vssd(steady).p99_latency_us)
            t_util.append(transfer.avg_utilization)
            p_util.append(pretrained.avg_utilization)
        mean = lambda xs: sum(xs) / len(xs)
        label = f"{steady[0].upper()} + ({initial[0].upper()}->{switched[0].upper()})"
        rows[label] = (
            mean(t_metric), mean(p_metric), mean(t_util), mean(p_util), steady_is_bw,
        )
    return rows


def test_fig17_transfer_matches_pretrained(benchmark, robustness):
    def regenerate():
        print_header(
            "Figure 17",
            "FleetIO-Transfer vs FleetIO-Pretrained after a workload switch",
        )
        print(f"{'scenario':>16s} {'metric':>10s} {'transfer':>10s} {'pretrained':>11s} {'ratio':>7s}")
        ratios = []
        for label, (t, p, ut, up, is_bw) in robustness.items():
            metric = "MB/s" if is_bw else "p99 us"
            # For latency, lower is better: invert so 1.0 means parity.
            ratio = (t / p) if is_bw else (p / t)
            ratios.append(ratio)
            print(f"{label:>16s} {metric:>10s} {t:10.1f} {p:11.1f} {ratio:7.2f}")
        return ratios

    ratios = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    worst = min(ratios)
    median = sorted(ratios)[len(ratios) // 2]
    print_expectation(
        "transfer within 5% of pretrained on every combination",
        f"median transfer/pretrained ratio {median:.2f}, worst {worst:.2f} "
        "(short simulated windows make tails noisy; bandwidth rows match "
        "within a few percent)",
    )
    # Bandwidth scenarios (the stable metric) must match tightly; the
    # latency scenarios may swing with GC/phase alignment but not
    # systematically collapse.
    assert median > 0.85
    assert worst > 0.3


def test_fig17_utilization_survives_switch(benchmark, robustness):
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, (_t, _p, util_transfer, util_pretrained, _is_bw) in robustness.items():
        assert util_transfer > 0.5 * util_pretrained, label


# ----------------------------------------------------------------------
# Adversarially discovered regression scenarios
# ----------------------------------------------------------------------
#: Scenarios found by the PAIRED-style regret search (``repro
#: adversarial``), committed as replayable cells.  They extend the
#: figure's robustness story beyond workload switches: these are the
#: collocations + fault schedules the search found the pre-trained
#: policy handles worst, replayed here under the full guardrail stack.
from pathlib import Path  # noqa: E402

CELL_DIR = Path(__file__).resolve().parent / "adversarial_cells"
CELL_PATHS = sorted(CELL_DIR.glob("adv-*.json"))


def test_adversarial_regression_cells(benchmark):
    from repro.adversarial import load_cell, replay_cell

    def regenerate():
        print_header(
            "Adversarial cells",
            "discovered high-regret scenarios under the guardrail stack",
        )
        print(
            f"{'cell':>18s} {'tenants':>8s} {'faults':>7s} "
            f"{'viol':>7s} {'fallbacks':>10s} {'digest':>14s}"
        )
        rows = []
        for path in CELL_PATHS:
            cell = load_cell(path)
            result = replay_cell(cell)
            genome = cell["genome"]
            print(
                f"{cell['cell_id']:>18s} {len(genome['tenants']):>8d} "
                f"{len(genome['faults']):>7d} {result.mean_violation:7.3f} "
                f"{result.fallbacks:>10d} {result.digest[:12]:>14s}"
            )
            rows.append((cell, result))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert len(rows) >= 2, f"expected committed cells in {CELL_DIR}"
    fallbacks = sum(result.fallbacks for _cell, result in rows)
    print_expectation(
        "each cell replays byte-identically; watchdog degrades gracefully",
        f"{len(rows)} cells replayed, {fallbacks} fallback transitions",
    )
    for cell, result in rows:
        assert result.digest == cell["replay"]["digest"], cell["cell_id"]
        assert result.fallbacks == cell["replay"]["fallbacks"], cell["cell_id"]
    assert fallbacks > 0
