"""Ablations of DESIGN.md's load-bearing design choices.

Not a paper figure — these benches justify two implementation decisions
the paper leaves open:

* **gSB superblock size** — larger harvestable slices amortize recycle
  churn; too small and a harvested channel's blocks thrash between the
  gSB and the home vSSD.
* **Priority bus-front arbitration** — Set_Priority(HIGH) must translate
  into device-level service order for FleetIO's isolation story to work;
  with it disabled, the latency tenant's tail under harvesting degrades.
"""


import pytest

from benchmarks.common import (
    DURATION_S,
    MEASURE_AFTER_S,
    SEED,
    print_expectation,
    print_header,
)
from repro.config import SSDConfig
from repro.harness import Experiment, plans_for_pair, run_policy_comparison


def _fleetio_run(ssd_config, plans):
    for plan in plans:
        if plan.slo_latency_us is None:
            hw = run_policy_comparison(
                plans, policies=("hardware",), duration_s=10.0,
                measure_after_s=4.0, ssd_config=ssd_config, seed=SEED,
            )["hardware"]
            for inner in plans:
                inner.slo_latency_us = hw.vssd(inner.name).p99_latency_us
            break
    return Experiment(plans, "fleetio", ssd_config=ssd_config, seed=SEED).run(
        DURATION_S, MEASURE_AFTER_S
    )


@pytest.fixture(scope="module")
def superblock_ablation():
    results = {}
    for blocks in (16, 48):
        config = SSDConfig(min_superblock_blocks=blocks)
        plans = plans_for_pair("vdi-web", "terasort")
        results[blocks] = _fleetio_run(config, plans)
    return results


def test_ablation_superblock_size(benchmark, superblock_ablation):
    def regenerate():
        print_header(
            "Ablation A", "gSB superblock size (blocks harvested per channel)"
        )
        print(f"{'blocks/ch':>10s} {'util':>8s} {'tera MB/s':>10s} {'tera WA':>8s}")
        for blocks, result in superblock_ablation.items():
            tera = result.vssd("terasort")
            print(
                f"{blocks:>10d} {result.avg_utilization:8.2%} "
                f"{tera.mean_bw_mbps:10.1f} {tera.write_amplification:8.2f}"
            )
        return superblock_ablation

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    small = results[16].vssd("terasort").mean_bw_mbps
    large = results[48].vssd("terasort").mean_bw_mbps
    print_expectation(
        "larger harvest slices amortize recycle churn (design choice)",
        f"48-block slices give {large / max(small, 1e-9):.2f}x the harvested "
        "bandwidth of 16-block slices",
    )
    assert large > small * 0.95  # at minimum, never worse


def test_ablation_priority_arbitration(benchmark):
    """Disable bus-front insertion by keeping every tenant at MEDIUM:
    run FleetIO with priority actions stripped via an admission policy."""
    from repro.virt.actions import SetPriorityAction

    plans = plans_for_pair("vdi-web", "terasort")
    hw = run_policy_comparison(
        plans, policies=("hardware",), duration_s=10.0, measure_after_s=4.0, seed=SEED
    )["hardware"]
    for plan in plans:
        plan.slo_latency_us = hw.vssd(plan.name).p99_latency_us

    def run(strip_priority):
        experiment = Experiment(plans, "fleetio", seed=SEED)
        experiment.build()
        if strip_priority:
            experiment.virt.admission.add_policy(
                lambda action, vssd: not isinstance(action, SetPriorityAction)
            )
        return experiment.run(DURATION_S, MEASURE_AFTER_S)

    def regenerate():
        with_priority = run(strip_priority=False)
        without_priority = run(strip_priority=True)
        print_header("Ablation B", "Set_Priority stripped vs enabled")
        for label, result in (("enabled", with_priority), ("stripped", without_priority)):
            vdi = result.vssd("vdi-web")
            print(
                f"  priority {label:>8s}: vdi p99 {vdi.p99_latency_us / 1000:6.2f} ms, "
                f"vio {vdi.slo_violation_frac:.2%}, util {result.avg_utilization:.2%}"
            )
        return with_priority, without_priority

    with_priority, without_priority = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    print_expectation(
        "priority arbitration is what keeps the latency tenant's tail "
        "near hardware isolation while harvesting is active",
        "stripping Set_Priority leaves utilization intact but costs tail "
        "latency headroom",
    )
    # Utilization should be in the same band either way (priority is an
    # isolation knob, not a throughput knob).
    assert (
        abs(with_priority.avg_utilization - without_priority.avg_utilization)
        < 0.15
    )
