"""Figure 12 — normalized P99 latency of latency-sensitive workloads.

Paper: FleetIO achieves 1.29-1.89x lower P99 than Software Isolation /
Adaptive and stays within ~1.2x of Hardware Isolation (the strongest);
P95/P99.9 increase only 3%/8% over Hardware Isolation.
"""

import pytest

from benchmarks.common import (
    STANDARD_PAIRS,
    bandwidth_name,
    latency_name,
    pair_results,
    print_expectation,
    print_header,
)
from repro.harness import POLICIES


@pytest.fixture(scope="module")
def grid():
    return {pair: pair_results(*pair) for pair in STANDARD_PAIRS}


def test_fig12_normalized_p99(benchmark, grid):
    def regenerate():
        print_header(
            "Figure 12", "P99 of latency-sensitive workloads (normalized to HW)"
        )
        print(f"{'workload (pair)':>26s}" + "".join(f"{p:>11s}" for p in POLICIES))
        table = {}
        for pair, results in grid.items():
            lat = latency_name(pair)
            hw_p99 = results["hardware"].vssd(lat).p99_latency_us
            row = {
                p: results[p].vssd(lat).p99_latency_us / max(hw_p99, 1e-9)
                for p in POLICIES
            }
            table[pair] = row
            label = f"{lat} (+{bandwidth_name(pair)})"
            print(f"{label:>26s}" + "".join(f"{row[p]:10.2f}x" for p in POLICIES))
        return table

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    gains = [row["software"] / row["fleetio"] for row in table.values()]
    print_expectation(
        "FleetIO 1.29-1.89x lower P99 than software isolation",
        f"FleetIO {min(gains):.2f}-{max(gains):.2f}x lower P99 than software",
    )
    for pair, row in table.items():
        # FleetIO's tail is far closer to hardware isolation than
        # software isolation's is.
        assert row["fleetio"] < row["software"], pair
    assert sum(gains) / len(gains) > 1.29


def test_fig12_p95_and_p999_close_to_hardware(benchmark, grid):
    """Paper: FleetIO's P95/P99.9 rise only 3%/8% over HW isolation."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    p95_ratios, p999_ratios = [], []
    for pair, results in grid.items():
        lat = latency_name(pair)
        hw = results["hardware"].vssd(lat)
        fl = results["fleetio"].vssd(lat)
        p95_ratios.append(fl.p95_latency_us / max(hw.p95_latency_us, 1e-9))
        p999_ratios.append(fl.p999_latency_us / max(hw.p999_latency_us, 1e-9))
    avg95 = sum(p95_ratios) / len(p95_ratios)
    avg999 = sum(p999_ratios) / len(p999_ratios)
    print(f"\nFleetIO P95 {avg95:.2f}x HW (paper 1.03x); "
          f"P99.9 {avg999:.2f}x HW (paper 1.08x)")
    sw95 = []
    for pair, results in grid.items():
        lat = latency_name(pair)
        sw95.append(
            results["software"].vssd(lat).p95_latency_us
            / max(results["hardware"].vssd(lat).p95_latency_us, 1e-9)
        )
    # FleetIO's P95 inflation is well below software isolation's.
    assert avg95 < sum(sw95) / len(sw95)
