"""Figure 6 — k-means clustering of cloud workloads in PCA space.

Paper: the nine workloads separate into three clusters — BI (TeraSort,
PageRank, ML Prep, ...), LC-1 (VDI-Web, TPCE, SearchEngine, LiveMaps),
and LC-2 (YCSB-B alone, thanks to its low LPA entropy); 98.4% of test
windows fall into their ground-truth clusters.
"""

import numpy as np
import pytest

from benchmarks.common import print_expectation, print_header
from repro.clustering import Pca, fit_default_classifier, trace_feature_windows
from repro.workloads import WORKLOAD_CATALOG, get_spec, synthesize_trace
from repro.workloads.catalog import CLUSTER_GROUND_TRUTH


@pytest.fixture(scope="module")
def classifier():
    return fit_default_classifier(
        seed=0, windows_per_workload=6, requests_per_window=5000
    )


def test_fig06_clustering_accuracy(benchmark, classifier):
    def regenerate():
        report = classifier.report
        print_header("Figure 6", "workload clustering (PCA projection + accuracy)")
        # PCA projection of each workload's mean feature vector, as the
        # 2-D scatter in the paper.
        rng = np.random.default_rng(42)
        rows, names = [], []
        for name in sorted(WORKLOAD_CATALOG):
            trace = synthesize_trace(get_spec(name), rng, 5000)
            rows.append(trace_feature_windows(trace, 5000).mean(axis=0))
            names.append(name)
        projected = Pca(n_components=2).fit_transform(np.log1p(np.stack(rows)))
        print(f"{'workload':>15s} {'cluster':>8s} {'factor1':>9s} {'factor2':>9s}")
        for name, point in zip(names, projected):
            print(
                f"{name:>15s} {CLUSTER_GROUND_TRUTH[name]:>8s} "
                f"{point[0]:9.3f} {point[1]:9.3f}"
            )
        return report

    report = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_expectation(
        "98.4% of test windows in ground-truth clusters; 3 clusters "
        "(BI / LC-1 / LC-2, YCSB-B alone in LC-2)",
        f"{report.test_accuracy:.1%} test accuracy; clusters labeled "
        f"{sorted(set(report.cluster_labels.values()))}",
    )
    assert report.test_accuracy >= 0.9
    assert set(report.cluster_labels.values()) == {"BI", "LC-1", "LC-2"}


def test_fig06_bi_separates_from_lc_in_pca(benchmark, classifier):
    """In the 2-D projection, BI workloads sit apart from LC workloads."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(7)
    rows, labels = [], []
    for name in sorted(WORKLOAD_CATALOG):
        trace = synthesize_trace(get_spec(name), rng, 5000)
        for row in trace_feature_windows(trace, 5000):
            rows.append(row)
            labels.append(CLUSTER_GROUND_TRUTH[name])
    projected = Pca(n_components=2).fit_transform(np.log1p(np.stack(rows)))
    labels = np.asarray(labels)
    bi = projected[labels == "BI"].mean(axis=0)
    lc = projected[labels != "BI"].mean(axis=0)
    spread = projected.std(axis=0).mean()
    assert np.linalg.norm(bi - lc) > spread
