"""Section 4.7 — overhead sources in FleetIO.

Paper (on their hardware): inference 1.1 ms per window, fine-tuning
51.2 ms per 10 windows, gSB creation < 1 us (metadata only), admission
control 0.8 ms per 1,000-action batch, 2.2 MB model per vSSD.  These are
real wall-clock microbenchmarks of our implementation — the one table
where absolute numbers are the point.
"""

import numpy as np
import pytest

from repro.config import RLConfig, SSDConfig
from repro.harness.pretrained import get_pretrained_net
from repro.rl import CategoricalPolicy, PpoTrainer, RolloutBuffer
from repro.virt import StorageVirtualizer
from repro.virt.actions import HarvestAction


@pytest.fixture(scope="module")
def net():
    return get_pretrained_net()


def test_inference_latency(benchmark, net):
    """Paper: 1.1 ms inference per decision window."""
    policy = CategoricalPolicy(net)
    state = np.random.default_rng(0).standard_normal(RLConfig().state_dim)
    benchmark(policy.act_greedy, state)
    mean_s = benchmark.stats.stats.mean
    print(f"\ninference: {mean_s * 1000:.3f} ms per decision (paper: 1.1 ms)")
    assert mean_s < 0.005


def test_finetune_cost(benchmark, net):
    """Paper: 51.2 ms fine-tuning every 10 windows."""
    config = RLConfig()
    trainer = PpoTrainer(net.clone(), config, np.random.default_rng(0))
    rng = np.random.default_rng(1)

    def one_update():
        buffer = RolloutBuffer(config.discount_factor, config.gae_lambda)
        for _ in range(32):
            buffer.add(
                rng.standard_normal(config.state_dim),
                int(rng.integers(12)),
                -2.0,
                rng.random(),
                0.0,
            )
        buffer.finish_path()
        trainer.update(buffer)

    benchmark(one_update)
    mean_s = benchmark.stats.stats.mean
    print(f"\nfine-tune: {mean_s * 1000:.2f} ms per update (paper: 51.2 ms)")
    assert mean_s < 0.5


def test_gsb_creation_cost(benchmark):
    """Paper: gSB creation < 1 us (metadata-only).  Ours also moves the
    block references; it stays deep in the microsecond range."""
    virt = StorageVirtualizer(config=SSDConfig())
    home = virt.create_vssd("home", list(range(8)))
    virt.create_vssd("other", list(range(8, 16)))
    per = virt.config.channel_write_bandwidth_mbps

    def create_and_destroy():
        gsb = virt.gsb_manager.make_harvestable(home, per + 1)
        virt.gsb_manager.reclaim_excess(home, 0)
        return gsb

    benchmark(create_and_destroy)
    mean_s = benchmark.stats.stats.mean
    print(f"\ngSB create+destroy: {mean_s * 1e6:.1f} us (paper: <1 us create)")
    assert mean_s < 0.005


def test_admission_batch_cost(benchmark):
    """Paper: 0.8 ms to process a batch of 1,000 actions."""
    virt = StorageVirtualizer(config=SSDConfig())
    a = virt.create_vssd("a", list(range(8)))
    virt.create_vssd("b", list(range(8, 16)))

    def thousand_actions():
        for _ in range(1000):
            virt.admission.submit(HarvestAction(a.vssd_id, 1000.0))
        virt.admission.process_batch()

    benchmark(thousand_actions)
    mean_s = benchmark.stats.stats.mean
    print(f"\nadmission: {mean_s * 1000:.2f} ms per 1,000-action batch (paper: 0.8 ms)")
    assert mean_s < 0.25


def test_model_footprint(benchmark, net):
    """Paper: 2.2 MB model (9K parameters) per vSSD."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    size_mb = net.size_bytes() / (1 << 20)
    print(
        f"\nmodel: {net.num_parameters()} parameters, {size_mb:.2f} MB "
        "(paper: 9K parameters, 2.2 MB with RLlib serialization overhead)"
    )
    assert net.num_parameters() < 20_000
    assert size_mb < 2.2


def test_hbt_footprint(benchmark):
    """Paper: <= 0.5 MB HBT for a 1 TB SSD with 4 MB blocks."""
    # Checked under --benchmark-only too (which skips plain tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.ssd.hbt import HarvestedBlockTable

    blocks = (1 << 40) // (4 << 20)
    bits = HarvestedBlockTable().footprint_bits(blocks)
    print(f"\nHBT: {bits / 8 / (1 << 20):.3f} MB for a 1 TB device (paper: <= 0.5 MB)")
    assert bits / 8 <= 0.5 * (1 << 20)
