"""Tests for stride scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import StrideScheduler


def test_equal_tickets_alternate():
    sched = StrideScheduler()
    sched.add_client("a", 100)
    sched.add_client("b", 100)
    picks = [sched.pick() for _ in range(10)]
    assert picks.count("a") == 5
    assert picks.count("b") == 5


def test_proportional_share():
    sched = StrideScheduler()
    sched.add_client("heavy", 300)
    sched.add_client("light", 100)
    picks = [sched.pick() for _ in range(400)]
    assert picks.count("heavy") == pytest.approx(300, abs=2)
    assert picks.count("light") == pytest.approx(100, abs=2)


def test_eligibility_filter():
    sched = StrideScheduler()
    sched.add_client("a", 100)
    sched.add_client("b", 100)
    assert sched.pick(eligible=["b"]) == "b"


def test_pick_empty_returns_none():
    sched = StrideScheduler()
    assert sched.pick() is None
    sched.add_client("a")
    assert sched.pick(eligible=[]) is None


def test_new_client_does_not_monopolize():
    sched = StrideScheduler()
    sched.add_client("old", 100)
    for _ in range(50):
        sched.pick()
    sched.add_client("new", 100)
    picks = [sched.pick() for _ in range(20)]
    # The newcomer starts at the current minimum pass; it should get
    # roughly half the picks, not all of them.
    assert 5 <= picks.count("new") <= 15


def test_duplicate_client_rejected():
    sched = StrideScheduler()
    sched.add_client("a")
    with pytest.raises(ValueError):
        sched.add_client("a")


def test_invalid_tickets_rejected():
    sched = StrideScheduler()
    with pytest.raises(ValueError):
        sched.add_client("a", tickets=0)


def test_remove_client():
    sched = StrideScheduler()
    sched.add_client("a")
    sched.add_client("b")
    sched.remove_client("a")
    assert all(sched.pick() == "b" for _ in range(5))


def test_set_tickets_changes_share():
    sched = StrideScheduler()
    sched.add_client("a", 100)
    sched.add_client("b", 100)
    sched.set_tickets("a", 400)
    picks = [sched.pick() for _ in range(100)]
    assert picks.count("a") > 70


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=5),
    st.integers(min_value=100, max_value=400),
)
def test_shares_converge_to_ticket_ratio(tickets, rounds):
    """Property: pick counts converge to the ticket proportions."""
    sched = StrideScheduler()
    for i, t in enumerate(tickets):
        sched.add_client(i, t)
    counts = {i: 0 for i in range(len(tickets))}
    for _ in range(rounds):
        counts[sched.pick()] += 1
    total_tickets = sum(tickets)
    for i, t in enumerate(tickets):
        expected = rounds * t / total_tickets
        assert abs(counts[i] - expected) <= max(3.0, 0.15 * rounds)


def test_set_tickets_unregistered_raises():
    """Regression: set_tickets on an unknown client used to create
    tickets/stride entries without a pass value, corrupting pick()."""
    sched = StrideScheduler()
    sched.add_client("a", 100)
    with pytest.raises(KeyError):
        sched.set_tickets("ghost", 200)
    # The failed call must not leave partial state behind.
    assert sched.clients() == ["a"]
    assert sched.pick() == "a"
    # add_client for the same id still works normally afterwards.
    sched.add_client("ghost", 200)
    assert "ghost" in sched.clients()
    picks = [sched.pick() for _ in range(30)]
    assert picks.count("ghost") > 0


def test_set_tickets_invalid_count_still_rejected():
    sched = StrideScheduler()
    sched.add_client("a", 100)
    with pytest.raises(ValueError):
        sched.set_tickets("a", 0)
