"""Edge-path tests for the dispatcher: retries, unregistration, bursts."""

import pytest

from repro.config import SSDConfig
from repro.sched import (
    FifoPolicy,
    IoDispatcher,
    IoRequest,
    TokenBucketStridePolicy,
)
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl


def _world(policy=None):
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=8, pages_per_block=16
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    dispatcher = IoDispatcher(sim, ssd, policy or FifoPolicy())
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    dispatcher.register_vssd(0, ftl)
    return config, sim, ssd, dispatcher


def _req(config, op="write", lpn=0, pages=1, vssd=0):
    return IoRequest(vssd, op, lpn, pages, config.page_size, 0.0)


def test_token_blocked_queue_drains_via_retry():
    """With an initially empty token bucket, requests dispatch only after
    refills — through the dispatcher's scheduled retry, with no external
    kick."""
    policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=16384.0)
    config, sim, ssd, dispatcher = _world(policy)
    done = []
    dispatcher.add_completion_callback(done.append)
    for i in range(5):
        dispatcher.submit(_req(config, lpn=i))
    sim.run()
    assert len(done) == 5
    # Tokens for 5 pages at 1 B/us means at least ~64 ms of simulated
    # pacing beyond the first burst page.
    assert sim.now >= 3 * 16384


def test_unregister_mid_stream_drops_queue():
    config, sim, ssd, dispatcher = _world()
    for i in range(3):
        dispatcher.submit(_req(config, lpn=i))
    dispatcher.unregister_vssd(0)
    sim.run()  # in-flight requests complete; queue is gone
    with pytest.raises(KeyError):
        dispatcher.submit(_req(config))


def test_burst_of_large_writes_completes(benchmark=None):
    config, sim, ssd, dispatcher = _world()
    done = []
    dispatcher.add_completion_callback(done.append)
    for i in range(30):
        dispatcher.submit(_req(config, lpn=i * 8, pages=8))
    sim.run()
    assert len(done) == 30
    assert all(r.complete_time >= r.dispatch_time >= r.submit_time for r in done)


def test_mixed_read_write_interleave_completes():
    config, sim, ssd, dispatcher = _world()
    ftl = dispatcher.ftls[0]
    ftl.warm_fill(range(64))
    done = []
    dispatcher.add_completion_callback(done.append)
    for i in range(60):
        op = "read" if i % 3 else "write"
        dispatcher.submit(_req(config, op=op, lpn=i % 64))
    sim.run()
    assert len(done) == 60
    reads = [r for r in done if r.is_read]
    assert reads and all(not r.failed for r in reads)


def test_retry_event_coalescing():
    """Multiple blocked pumps reuse/tighten one retry event rather than
    piling up events."""
    policy = TokenBucketStridePolicy(rate_bytes_per_us=0.01, burst_bytes=16384.0)
    config, sim, ssd, dispatcher = _world(policy)
    for i in range(4):
        dispatcher.submit(_req(config, lpn=i))
    # At most a couple of pending events exist (one retry + completions).
    assert sim.pending_events <= 3
    sim.run()
