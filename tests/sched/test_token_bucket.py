"""Tests for the token-bucket rate limiter."""

import pytest
from hypothesis import given, strategies as st

from repro.sched import TokenBucket


def test_starts_full():
    bucket = TokenBucket(rate_bytes_per_us=1.0, burst_bytes=100.0)
    assert bucket.tokens(0.0) == 100.0


def test_consume_depletes():
    bucket = TokenBucket(1.0, 100.0)
    assert bucket.consume(60.0, now=0.0)
    assert bucket.tokens(0.0) == pytest.approx(40.0)


def test_consume_fails_when_insufficient():
    bucket = TokenBucket(1.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert not bucket.consume(1.0, now=0.0)


def test_refill_over_time():
    bucket = TokenBucket(2.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert bucket.tokens(10.0) == pytest.approx(20.0)


def test_refill_caps_at_burst():
    bucket = TokenBucket(2.0, 100.0)
    assert bucket.tokens(1_000_000.0) == 100.0


def test_time_until_available():
    bucket = TokenBucket(2.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert bucket.time_until_available(50.0, now=0.0) == pytest.approx(25.0)
    assert bucket.time_until_available(0.0, now=0.0) == 0.0


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        TokenBucket(0.0, 10.0)
    with pytest.raises(ValueError):
        TokenBucket(1.0, 0.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_tokens_never_negative_or_above_burst(steps):
    """Invariant: token level stays within [0, burst] under any trace."""
    bucket = TokenBucket(rate_bytes_per_us=1.5, burst_bytes=64.0)
    now = 0.0
    for delta, amount in steps:
        now += delta
        bucket.consume(amount, now)
        level = bucket.tokens(now)
        assert -1e-9 <= level <= 64.0 + 1e-9


def test_zero_byte_request_always_passes():
    """A zero-byte request needs no tokens, even from an empty bucket."""
    bucket = TokenBucket(1.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert bucket.can_consume(0.0, now=0.0)
    assert bucket.consume(0.0, now=0.0)
    assert bucket.time_until_available(0.0, now=0.0) == 0.0
    assert bucket.tokens(0.0) == pytest.approx(0.0)


def test_request_exceeding_burst_never_available():
    """Regression: a request larger than the burst ceiling used to get a
    finite wait estimate although the bucket can never hold that much."""
    import math

    bucket = TokenBucket(rate_bytes_per_us=2.0, burst_bytes=100.0)
    assert bucket.time_until_available(101.0, now=0.0) == math.inf
    # Even after arbitrarily long refill the request stays unserviceable.
    assert not bucket.can_consume(101.0, now=1e12)
    assert bucket.time_until_available(101.0, now=1e12) == math.inf
    # Exactly-burst requests remain satisfiable.
    assert bucket.time_until_available(100.0, now=1e12) == 0.0


def test_oversized_head_does_not_poison_retry_schedule():
    """next_eligible_time skips heads that can never fit their bucket."""
    from repro.sched.policies import TokenBucketStridePolicy
    from repro.sched.request import IoRequest

    policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=64.0)
    policy.register_vssd(1)
    policy.register_vssd(2)
    policy._buckets[1].consume(64.0, now=0.0)
    policy._buckets[2].consume(64.0, now=0.0)
    oversized = IoRequest(vssd_id=1, op="write", lpn=0, num_pages=1, page_size=1000, submit_time=0.0)
    normal = IoRequest(vssd_id=2, op="write", lpn=0, num_pages=1, page_size=32, submit_time=0.0)
    queues = {1: [oversized], 2: [normal]}
    when = policy.next_eligible_time(0.0, queues)
    # Only the satisfiable head contributes a retry time: 32 bytes at
    # 1 byte/us from an empty bucket.
    assert when == pytest.approx(32.0)
    # With only the oversized head queued there is nothing to retry for.
    assert policy.next_eligible_time(0.0, {1: [oversized]}) is None


def test_refill_no_float_drift_over_long_horizon():
    """Many small refills must accumulate like one large refill."""
    rate, burst = 0.1, 1e9
    stepped = TokenBucket(rate, burst)
    jumped = TokenBucket(rate, burst)
    stepped.consume(burst, now=0.0)
    jumped.consume(burst, now=0.0)
    now = 0.0
    for _ in range(10_000):
        now += 123.456
        stepped.tokens(now)
    drift = abs(stepped.tokens(now) - jumped.tokens(now))
    # Relative drift stays within float round-off of the total refilled.
    assert drift <= 1e-6 * jumped.tokens(now)


def test_refill_is_monotone_under_repeated_queries():
    """Querying tokens() repeatedly at the same instant changes nothing."""
    bucket = TokenBucket(2.0, 100.0)
    bucket.consume(100.0, now=0.0)
    first = bucket.tokens(5.0)
    for _ in range(100):
        assert bucket.tokens(5.0) == first
