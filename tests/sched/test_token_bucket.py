"""Tests for the token-bucket rate limiter."""

import pytest
from hypothesis import given, strategies as st

from repro.sched import TokenBucket


def test_starts_full():
    bucket = TokenBucket(rate_bytes_per_us=1.0, burst_bytes=100.0)
    assert bucket.tokens(0.0) == 100.0


def test_consume_depletes():
    bucket = TokenBucket(1.0, 100.0)
    assert bucket.consume(60.0, now=0.0)
    assert bucket.tokens(0.0) == pytest.approx(40.0)


def test_consume_fails_when_insufficient():
    bucket = TokenBucket(1.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert not bucket.consume(1.0, now=0.0)


def test_refill_over_time():
    bucket = TokenBucket(2.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert bucket.tokens(10.0) == pytest.approx(20.0)


def test_refill_caps_at_burst():
    bucket = TokenBucket(2.0, 100.0)
    assert bucket.tokens(1_000_000.0) == 100.0


def test_time_until_available():
    bucket = TokenBucket(2.0, 100.0)
    bucket.consume(100.0, now=0.0)
    assert bucket.time_until_available(50.0, now=0.0) == pytest.approx(25.0)
    assert bucket.time_until_available(0.0, now=0.0) == 0.0


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        TokenBucket(0.0, 10.0)
    with pytest.raises(ValueError):
        TokenBucket(1.0, 0.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_tokens_never_negative_or_above_burst(steps):
    """Invariant: token level stays within [0, burst] under any trace."""
    bucket = TokenBucket(rate_bytes_per_us=1.5, burst_bytes=64.0)
    now = 0.0
    for delta, amount in steps:
        now += delta
        bucket.consume(amount, now)
        level = bucket.tokens(now)
        assert -1e-9 <= level <= 64.0 + 1e-9
