"""Tests for dispatch-ordering policies."""

from collections import deque

import pytest

from repro.sched import (
    FifoPolicy,
    IoRequest,
    Priority,
    PriorityPolicy,
    TokenBucketStridePolicy,
)


def _req(vssd_id, submit_time=0.0, pages=1):
    return IoRequest(vssd_id, "read", 0, pages, 16384, submit_time)


def _queues(*requests_per_vssd):
    return {
        vssd_id: deque(reqs) for vssd_id, reqs in enumerate(requests_per_vssd)
    }


ALLOW = lambda request: True
DENY = lambda request: False


class TestFifo:
    def test_oldest_head_wins(self):
        queues = _queues([_req(0, 10.0)], [_req(1, 5.0)])
        assert FifoPolicy().select(20.0, queues, ALLOW) == 1

    def test_blocked_heads_skipped(self):
        queues = _queues([_req(0, 10.0)], [_req(1, 5.0)])
        blocked_first = lambda r: r.vssd_id != 1
        assert FifoPolicy().select(20.0, queues, blocked_first) == 0

    def test_empty_returns_none(self):
        assert FifoPolicy().select(0.0, _queues([], []), ALLOW) is None


class TestPriority:
    def _policy(self):
        policy = PriorityPolicy()
        policy.register_vssd(0)
        policy.register_vssd(1)
        return policy

    def test_default_is_medium(self):
        assert self._policy().get_priority(0) is Priority.MEDIUM

    def test_high_priority_wins_despite_age(self):
        policy = self._policy()
        policy.set_priority(1, Priority.HIGH)
        queues = _queues([_req(0, 1.0)], [_req(1, 100.0)])
        assert policy.select(200.0, queues, ALLOW) == 1

    def test_fifo_within_level(self):
        policy = self._policy()
        queues = _queues([_req(0, 50.0)], [_req(1, 10.0)])
        assert policy.select(60.0, queues, ALLOW) == 1

    def test_low_priority_loses(self):
        policy = self._policy()
        policy.set_priority(0, Priority.LOW)
        queues = _queues([_req(0, 1.0)], [_req(1, 100.0)])
        assert policy.select(200.0, queues, ALLOW) == 1

    def test_set_priority_unknown_vssd_raises(self):
        with pytest.raises(KeyError):
            self._policy().set_priority(9, Priority.HIGH)

    def test_unregister(self):
        policy = self._policy()
        policy.unregister_vssd(1)
        queues = _queues([_req(0)], [])
        assert policy.select(0.0, queues, ALLOW) == 0


class TestTokenBucketStride:
    def _policy(self, rate=1000.0, burst=1 << 20):
        policy = TokenBucketStridePolicy(rate_bytes_per_us=rate, burst_bytes=burst)
        policy.register_vssd(0)
        policy.register_vssd(1)
        return policy

    def test_alternates_when_both_eligible(self):
        policy = self._policy()
        queues = _queues(
            [_req(0) for _ in range(4)], [_req(1) for _ in range(4)]
        )
        picks = []
        for _ in range(4):
            choice = policy.select(0.0, queues, ALLOW)
            picks.append(choice)
            queues[choice].popleft()
        assert picks.count(0) == 2 and picks.count(1) == 2

    def test_empty_bucket_blocks(self):
        policy = TokenBucketStridePolicy(rate_bytes_per_us=0.001, burst_bytes=16384.0)
        policy.register_vssd(0)
        queues = {0: deque([_req(0, pages=4)])}  # 64 KiB > 16 KiB burst
        assert policy.select(0.0, queues, ALLOW) is None

    def test_next_eligible_time_reports_refill(self):
        policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=65536.0)
        policy.register_vssd(0)
        queues = {0: deque([_req(0, pages=4), _req(0, pages=4)])}
        assert policy.select(0.0, queues, ALLOW) == 0  # drains the bucket
        queues[0].popleft()
        when = policy.next_eligible_time(0.0, queues)
        assert when == pytest.approx(4 * 16384)

    def test_next_eligible_time_skips_unsatisfiable_head(self):
        # A head above the burst ceiling can never fit; it must not
        # produce a (bogus) finite retry time.
        policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=16384.0)
        policy.register_vssd(0)
        queues = {0: deque([_req(0, pages=4)])}
        assert policy.select(0.0, queues, ALLOW) is None
        assert policy.next_eligible_time(0.0, queues) is None

    def test_tokens_consumed_on_select(self):
        policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=32768.0)
        policy.register_vssd(0)
        queues = {0: deque([_req(0), _req(0), _req(0)])}
        assert policy.select(0.0, queues, ALLOW) == 0
        queues[0].popleft()
        assert policy.select(0.0, queues, ALLOW) == 0
        queues[0].popleft()
        # Burst of 2 pages consumed; the third must wait.
        assert policy.select(0.0, queues, ALLOW) is None

    def test_per_vssd_rate_override(self):
        policy = TokenBucketStridePolicy(rate_bytes_per_us=1.0, burst_bytes=16384.0)
        policy.register_vssd(0, rate_bytes_per_us=100.0, burst_bytes=1 << 20)
        queues = {0: deque([_req(0, pages=10)])}
        assert policy.select(0.0, queues, ALLOW) == 0
