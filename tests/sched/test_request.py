"""Tests for the I/O request model."""

import pytest

from repro.sched import IoRequest, Priority


def _req(**kwargs):
    defaults = dict(
        vssd_id=0, op="read", lpn=0, num_pages=1, page_size=16384, submit_time=0.0
    )
    defaults.update(kwargs)
    return IoRequest(**defaults)


def test_size_bytes():
    assert _req(num_pages=4).size_bytes == 4 * 16384


def test_is_read():
    assert _req(op="read").is_read
    assert not _req(op="write").is_read


def test_invalid_op_rejected():
    with pytest.raises(ValueError):
        _req(op="erase")


def test_invalid_pages_rejected():
    with pytest.raises(ValueError):
        _req(num_pages=0)


def test_negative_lpn_rejected():
    with pytest.raises(ValueError):
        _req(lpn=-1)


def test_latency_requires_completion():
    request = _req(submit_time=100.0)
    with pytest.raises(RuntimeError):
        _ = request.latency_us
    request.dispatch_time = 150.0
    request.complete_time = 400.0
    assert request.latency_us == 300.0
    assert request.queue_delay_us == 50.0


def test_queue_delay_requires_dispatch():
    with pytest.raises(RuntimeError):
        _ = _req().queue_delay_us


def test_request_ids_unique():
    assert _req().req_id != _req().req_id


def test_priority_ordering():
    assert Priority.LOW < Priority.MEDIUM < Priority.HIGH
