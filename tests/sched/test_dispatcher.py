"""Tests for the dispatcher: queues, budgets, completions, retries."""

import pytest

from repro.config import SSDConfig
from repro.sched import FifoPolicy, IoDispatcher, IoRequest, PriorityPolicy, Priority
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl


@pytest.fixture
def stack(small_config):
    sim = Simulator()
    ssd = Ssd(small_config, sim)
    dispatcher = IoDispatcher(sim, ssd, FifoPolicy())
    ftl_a = VssdFtl(0, ssd)
    ftl_a.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    ftl_b = VssdFtl(1, ssd)
    ftl_b.adopt_blocks(ssd.allocate_channels(1, [2, 3]))
    dispatcher.register_vssd(0, ftl_a)
    dispatcher.register_vssd(1, ftl_b)
    return sim, ssd, dispatcher, ftl_a, ftl_b


def _req(vssd_id, op="write", lpn=0, pages=1, t=0.0):
    return IoRequest(vssd_id, op, lpn, pages, 16384, t)


def test_submit_and_complete(stack):
    sim, ssd, dispatcher, *_ = stack
    done = []
    dispatcher.add_completion_callback(done.append)
    dispatcher.submit(_req(0))
    sim.run()
    assert len(done) == 1
    assert done[0].complete_time > 0
    assert done[0].dispatch_time == 0.0


def test_unregistered_vssd_rejected(stack):
    _sim, _ssd, dispatcher, *_ = stack
    with pytest.raises(KeyError):
        dispatcher.submit(_req(9))


def test_duplicate_registration_rejected(stack):
    sim, ssd, dispatcher, ftl_a, _ = stack
    with pytest.raises(ValueError):
        dispatcher.register_vssd(0, ftl_a)


def test_all_requests_eventually_complete(stack):
    sim, ssd, dispatcher, *_ = stack
    done = []
    dispatcher.add_completion_callback(done.append)
    for i in range(200):
        dispatcher.submit(_req(i % 2, lpn=i, pages=2))
    sim.run()
    assert len(done) == 200
    assert dispatcher.failed_requests == 0


def test_inflight_budget_limits_dispatch(stack, small_config):
    sim, ssd, dispatcher, ftl_a, _ = stack
    budget = small_config.inflight_pages_per_channel * ftl_a.channel_count()
    for i in range(50):
        dispatcher.submit(_req(0, lpn=i * 4, pages=4))
    inflight = dispatcher._inflight_pages[0]
    assert inflight <= budget + 4  # one request may overshoot
    assert dispatcher.queue_length(0) > 0
    sim.run()
    assert dispatcher.queue_length(0) == 0


def test_inflight_accounting_returns_to_zero(stack):
    sim, _ssd, dispatcher, *_ = stack
    for i in range(20):
        dispatcher.submit(_req(0, lpn=i, pages=2))
    sim.run()
    assert dispatcher._inflight_pages[0] == 0


def test_queue_delay_measured(stack):
    sim, ssd, dispatcher, *_ = stack
    latencies = []
    dispatcher.add_completion_callback(lambda r: latencies.append(r.queue_delay_us))
    for i in range(100):
        dispatcher.submit(_req(0, lpn=i, pages=4))
    sim.run()
    assert max(latencies) > 0.0  # later requests waited in the queue


def test_reads_follow_data_placement(stack):
    sim, ssd, dispatcher, ftl_a, _ = stack
    done = []
    dispatcher.add_completion_callback(done.append)
    ftl_a.warm_fill(range(8))
    dispatcher.submit(_req(0, op="read", lpn=3))
    sim.run()
    assert done[0].complete_time is not None


def test_hardware_isolated_vssds_do_not_interfere(stack, small_config):
    sim, ssd, dispatcher, *_ = stack
    lat = {0: [], 1: []}
    dispatcher.add_completion_callback(lambda r: lat[r.vssd_id].append(r.latency_us))
    # vSSD 0 hammers its own channels; vSSD 1 issues sparse reads.
    for i in range(100):
        dispatcher.submit(_req(0, lpn=i * 4, pages=4))
    dispatcher.submit(_req(1, op="read", lpn=0))
    sim.run()
    # vSSD 1's single read on its own channels is served at base latency.
    base = small_config.page_read_us + small_config.bus_transfer_us
    assert lat[1][0] <= base * 2


def test_priority_policy_orders_dispatch(small_config):
    sim = Simulator()
    ssd = Ssd(small_config, sim)
    policy = PriorityPolicy()
    dispatcher = IoDispatcher(sim, ssd, policy)
    half = small_config.blocks_per_channel // 2
    ftl_a = VssdFtl(0, ssd)
    ftl_a.adopt_blocks(ssd.allocate_blocks_striped(0, [0, 1], half))
    ftl_b = VssdFtl(1, ssd)
    ftl_b.adopt_blocks(ssd.allocate_blocks_striped(1, [0, 1], half))
    dispatcher.register_vssd(0, ftl_a)
    dispatcher.register_vssd(1, ftl_b)
    policy.set_priority(1, Priority.HIGH)
    lat = {0: [], 1: []}
    dispatcher.add_completion_callback(lambda r: lat[r.vssd_id].append(r.latency_us))
    for i in range(200):
        dispatcher.submit(_req(0, lpn=i * 2, pages=2))
        if i % 10 == 0:
            dispatcher.submit(_req(1, op="write", lpn=i))
    sim.run()
    import numpy as np

    assert np.mean(lat[1]) < np.mean(lat[0])


def test_no_deadlock_when_gc_saturates(small_config):
    """Regression: a burst that pushes every channel past its horizon
    while nothing is in flight must not stall forever."""
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=4, pages_per_block=8
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    dispatcher = IoDispatcher(sim, ssd, FifoPolicy())
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    dispatcher.register_vssd(0, ftl)
    done = []
    dispatcher.add_completion_callback(done.append)
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    ws = total_pages // 3
    for i in range(total_pages * 3):
        dispatcher.submit(_req(0, lpn=i % ws, pages=1))
    sim.run()
    assert len(done) == total_pages * 3
    assert dispatcher.failed_requests == 0
