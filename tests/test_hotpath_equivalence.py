"""Bit-exactness tests for the single-run hot-path optimizations.

Every optimization behind the byte-identical telemetry gate has a direct
equivalence test here: the fast path is compared against the unoptimized
reference computation *bit for bit* (``tobytes()`` equality, so even a
``-0.0`` vs ``+0.0`` drift fails), and where the fast path consumes an
RNG, the generator's end state is compared too — identical values from a
different stream position would still corrupt downstream determinism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.buffer import RolloutBuffer
from repro.rl.nets import PolicyValueNet
from repro.rl.policy import CategoricalPolicy
from repro.sim import Simulator
from repro.workloads.address import ZipfPattern
from repro.workloads.catalog import get_spec
from repro.workloads.model import WorkloadModel


def _bits(array) -> bytes:
    return np.ascontiguousarray(np.asarray(array, dtype=np.float64)).tobytes()


# -- batched inference ----------------------------------------------------

@pytest.fixture
def net() -> PolicyValueNet:
    return PolicyValueNet(33, 7, (50, 50), rng=np.random.default_rng(42))


@pytest.mark.parametrize("n", [1, 2, 3, 8, 16])
def test_forward_batch_matches_per_row_forward(net, n):
    """Stacked forward must reproduce each per-row forward bit-for-bit."""
    x = np.random.default_rng(n).standard_normal((n, net.input_dim))
    batch_logits, batch_values = net.forward_batch(x)
    assert batch_logits.shape == (n, net.num_actions)
    for i in range(n):
        row_logits, row_values, _ = net.forward(x[i : i + 1])
        assert _bits(batch_logits[i]) == _bits(row_logits[0])
        assert _bits(batch_values[i]) == _bits(row_values[0])


def test_act_from_batched_logits_matches_act(net):
    """Sampling from batched logits = per-agent act(): same action,
    log-prob, value, *and* RNG end state."""
    policy = CategoricalPolicy(net)
    states = np.random.default_rng(7).standard_normal((6, net.input_dim))
    logits, values = net.forward_batch(states)
    for i in range(len(states)):
        rng_ref = np.random.default_rng(100 + i)
        rng_fast = np.random.default_rng(100 + i)
        ref = policy.act(states[i : i + 1], rng_ref)
        fast = policy.act_from_logits(logits[i], values[i], rng_fast)
        assert fast[0] == ref[0]
        assert _bits(fast[1:]) == _bits(ref[1:])
        assert rng_fast.bit_generator.state == rng_ref.bit_generator.state


def test_act_greedy_from_batched_logits_matches_act_greedy(net):
    policy = CategoricalPolicy(net)
    states = np.random.default_rng(8).standard_normal((5, net.input_dim))
    logits, values = net.forward_batch(states)
    for i in range(len(states)):
        ref = policy.act_greedy(states[i : i + 1])
        fast = policy.act_greedy_from_logits(logits[i], values[i])
        assert fast[0] == ref[0]
        assert _bits(fast[1:]) == _bits(ref[1:])


def test_params_version_tracks_identity(net):
    """Equal tokens must mean bit-identical params; mutation refreshes."""
    clone = net.clone()
    assert clone.params_version is net.params_version
    token = net.params_version
    net.mark_params_updated()
    assert net.params_version is not token
    clone.set_flat_params(clone.get_flat_params())
    assert clone.params_version is not token


# -- vectorized GAE -------------------------------------------------------

def _reference_gae(rewards, values, bootstrap, discount, lam):
    """The original scalar finish_path loop, verbatim operand order."""
    values = list(values) + [bootstrap]
    advantages = []
    gae = 0.0
    for t in reversed(range(len(rewards))):
        delta = rewards[t] + discount * values[t + 1] - values[t]
        gae = delta + discount * lam * gae
        advantages.append(gae)
    advantages.reverse()
    returns = [adv + val for adv, val in zip(advantages, values[:-1])]
    return advantages, returns


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("length", [1, 2, 17, 256])
def test_finish_path_matches_reference_loop(seed, length):
    rng = np.random.default_rng(seed)
    discount, lam = 0.9, 0.95
    buffer = RolloutBuffer(discount, lam)
    rewards = (rng.standard_normal(length) * 10).tolist()
    values = (rng.standard_normal(length) * 5).tolist()
    for t in range(length):
        buffer.add(rng.standard_normal(4), 0, -1.0, rewards[t], values[t])
    bootstrap = float(rng.standard_normal())
    buffer.finish_path(bootstrap)
    ref_adv, ref_ret = _reference_gae(rewards, values, bootstrap, discount, lam)
    assert _bits(buffer.advantages) == _bits(ref_adv)
    assert _bits(buffer.returns) == _bits(ref_ret)


def test_finish_path_multiple_segments_accumulate():
    """Each segment's GAE must only see its own transitions."""
    rng = np.random.default_rng(3)
    buffer = RolloutBuffer(0.99, 0.9)
    all_adv, all_ret = [], []
    for length in (4, 1, 9):
        rewards = rng.standard_normal(length).tolist()
        values = rng.standard_normal(length).tolist()
        for t in range(length):
            buffer.add(rng.standard_normal(2), 1, -0.5, rewards[t], values[t])
        buffer.finish_path(0.25)
        adv, ret = _reference_gae(rewards, values, 0.25, 0.99, 0.9)
        all_adv.extend(adv)
        all_ret.extend(ret)
    assert _bits(buffer.advantages) == _bits(all_adv)
    assert _bits(buffer.returns) == _bits(all_ret)


# -- event pool -----------------------------------------------------------

def test_event_pool_preserves_fire_order_under_churn():
    """Recycled Event objects and heap compaction must not perturb the
    (time, schedule-order) total order, even under heavy cancel churn."""
    sim = Simulator()
    rng = np.random.default_rng(11)
    fired: list = []
    expected: list = []
    serial = 0
    for _round in range(40):
        handles = []
        for _ in range(25):
            # Coarse times force plenty of (time, seq) ties.
            delay = float(rng.integers(0, 8))
            label = serial
            serial += 1
            handles.append((sim.schedule(delay, fired.append, label),
                            sim.now + delay, label))
        keep = rng.random(len(handles)) > 0.5
        for (handle, time_us, label), kept in zip(handles, keep):
            if kept:
                expected.append((time_us, label))
            else:
                handle.cancel()
        sim.run_until(sim.now + float(rng.integers(1, 6)))
    sim.run()
    expected.sort(key=lambda pair: (pair[0], pair[1]))
    assert fired == [label for _time, label in expected]
    # The stress must actually exercise the machinery it guards.
    assert sim.heap_compactions > 0
    assert len(sim._pool) > 0


def test_event_pool_recycles_objects():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.run()
    recycled = sim.schedule(1.0, lambda: None)
    assert recycled is first  # same object, pulled back off the free list
    # A stale handle to the fired event aliases the new one by design;
    # cancelling *before* recycling must be a no-op on pooled events.
    sim.run()
    first.cancel()
    assert sim.pending_events == 0


# -- cdf-searchsorted sampling --------------------------------------------

def test_zipf_sample_matches_generator_choice():
    pattern = ZipfPattern(working_set_pages=1 << 16)
    rng_fast = np.random.default_rng(123)
    rng_ref = np.random.default_rng(123)
    for _ in range(2000):
        lpn = pattern.sample(rng_fast, 1)
        bucket = int(pattern._bucket_order[rng_ref.choice(pattern.BUCKETS, p=pattern._probs)])
        offset = int(rng_ref.integers(0, pattern._bucket_pages))
        assert lpn == pattern._clamp(bucket * pattern._bucket_pages + offset, 1)
    assert rng_fast.bit_generator.state == rng_ref.bit_generator.state


# -- SoA span paths vs per-page object paths ------------------------------
#
# ``write_span``/``read_span`` inline frontier picking, programming, bus
# arbitration, and GC triggering against the structure-of-arrays columns;
# ``write_page``/``read_page`` are the retained per-page object reference.
# A randomized mixed workload (overwrites, unmapped reads, trims, enough
# churn to trigger GC) must leave twin devices in bit-identical state.

def _twin_ftls():
    from repro.config import SSDConfig
    from repro.ssd import Ssd, VssdFtl
    from repro.ssd.hbt import HarvestedBlockTable

    config = SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=8,
        pages_per_block=16,
        min_superblock_blocks=2,
    )
    twins = []
    for _ in range(2):
        sim = Simulator()
        ssd = Ssd(config, sim)
        ftl = VssdFtl(0, ssd, hbt=HarvestedBlockTable())
        ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
        twins.append((sim, ftl))
    return twins


def _ref_span(ftl, op, lpn, num_pages, front):
    """The retired dispatcher loop: one ``*_page`` call per page."""
    page_io = ftl.write_page if op == "write" else ftl.read_page
    done = ftl.ssd.sim.now
    pages_by_channel: dict = {}
    for cur in range(lpn, lpn + num_pages):
        page_done, channel_id = page_io(cur, front=front)
        if page_done > done:
            done = page_done
        pages_by_channel[channel_id] = pages_by_channel.get(channel_id, 0) + 1
    return done, pages_by_channel


def _ftl_state(ftl):
    """Every piece of mutable state the span paths touch, bit-exact."""
    store = ftl._store
    arrays = ftl._arrays
    stats = ftl.stats
    return {
        "l2p_gid": list(ftl._l2p_gid),
        "l2p_page": list(ftl._l2p_page),
        "page_lpns": store.page_lpns.tobytes(),
        "erase_count": store.erase_count.tobytes(),
        "state": list(store.state),
        "owner": list(store.owner),
        "writer": list(store.writer),
        "harvested": list(store.harvested),
        "write_ptr": list(store.write_ptr),
        "valid_count": list(store.valid_count),
        "bus_busy": _bits(arrays.bus_busy),
        "chip_busy": _bits(arrays.chip_busy),
        "mapped": ftl._mapped,
        "write_rr": ftl._write_rr,
        "unmapped_rr": ftl._unmapped_rr,
        "ftl_stats": (
            stats.host_reads, stats.host_writes, stats.unmapped_reads,
            stats.gc_reads, stats.gc_writes, stats.gc_runs,
            stats.blocks_erased,
        ),
        "chan_stats": [
            (s.pages_read, s.pages_written, s.gc_pages_migrated,
             s.gc_erases, _bits([s.busy_us]), _bits([s.gc_busy_us]))
            for s in ftl._chan_stats
        ],
    }


@pytest.mark.parametrize("seed", range(4))
def test_span_paths_match_per_page_object_paths(seed):
    """Differential: SoA spans vs the per-page reference, GC included."""
    rng = np.random.default_rng(seed)
    (sim_fast, fast), (sim_ref, ref) = _twin_ftls()
    working_set = 96  # < owned capacity, so overwrites force GC churn
    for _ in range(500):
        roll = rng.random()
        lpn = int(rng.integers(0, working_set))
        num_pages = int(rng.integers(1, 9))
        front = bool(rng.random() < 0.25)
        if roll < 0.70:
            got = fast.write_span(lpn, num_pages, front=front)
            want = _ref_span(ref, "write", lpn, num_pages, front)
        elif roll < 0.98:
            got = fast.read_span(lpn, num_pages, front=front)
            want = _ref_span(ref, "read", lpn, num_pages, front)
        else:
            assert fast.trim_all() == ref.trim_all()
            got = want = None
        if got is not None:
            assert _bits([got[0]]) == _bits([want[0]])  # completion time
            assert got[1] == want[1]  # pages per channel
            assert list(got[1]) == list(want[1])  # same insertion order
        # Advance both clocks identically so busy horizons drain.
        step = float(rng.integers(0, 60))
        sim_fast.now += step
        sim_ref.now += step
    # The sequence must actually have exercised the uncommon paths.
    assert ref.stats.gc_runs > 0
    assert ref.stats.unmapped_reads > 0
    assert _ftl_state(fast) == _ftl_state(ref)


@pytest.mark.parametrize("workload", ["ycsb", "terasort", "vdi-web"])
def test_size_sampling_matches_generator_choice(workload):
    spec = get_spec(workload)
    rng_fast = np.random.default_rng(9)
    rng_ref = np.random.default_rng(9)
    model = WorkloadModel(spec, rng_fast, working_set_pages=4096)
    sizes = np.asarray(spec.io_sizes_pages, dtype=np.int64)
    probs = np.asarray(spec.io_size_probs, dtype=np.float64)
    for _ in range(2000):
        assert model.sample_size_pages() == int(rng_ref.choice(sizes, p=probs))
    assert rng_fast.bit_generator.state == rng_ref.bit_generator.state
