"""Round-trip tests for the versioned fault-schedule serialization."""

import pytest

from repro.faults import (
    FAULT_SCHEMA_VERSION,
    FaultSpec,
    channel_outage,
    channel_slowdown,
    fault_from_dict,
    fault_to_dict,
    gc_storm,
    latency_spike,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)

SCHEDULE = [
    channel_slowdown(3, factor=6.5, start_s=1.25, duration_s=4.0),
    channel_outage(7, start_s=2.0, duration_s=3.0),
    latency_spike(0, extra_latency_us=12_345.5, start_s=0.5, duration_s=8.0),
    gc_storm("tenant-a", start_s=3.0, duration_s=2.0, threshold=0.25),
]


def test_fault_round_trip_exact():
    for spec in SCHEDULE:
        assert fault_from_dict(fault_to_dict(spec)) == spec


def test_fault_dict_lists_every_field():
    data = fault_to_dict(SCHEDULE[0])
    assert set(data) == {
        "kind", "start_s", "duration_s", "channel", "vssd",
        "factor", "extra_latency_us", "gc_threshold",
    }


def test_schedule_json_round_trip_exact():
    text = schedule_to_json(SCHEDULE)
    assert schedule_from_json(text) == SCHEDULE
    # Serialization is stable: a second pass produces identical bytes.
    assert schedule_to_json(schedule_from_json(text)) == text


def test_schedule_document_carries_schema():
    doc = schedule_to_dict(SCHEDULE)
    assert doc["schema"] == FAULT_SCHEMA_VERSION
    assert len(doc["faults"]) == len(SCHEDULE)


def test_future_schema_rejected():
    doc = schedule_to_dict(SCHEDULE)
    doc["schema"] = FAULT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        schedule_from_dict(doc)


def test_missing_schema_rejected():
    with pytest.raises(ValueError, match="schema"):
        schedule_from_dict({"faults": []})


def test_unknown_field_rejected():
    data = fault_to_dict(SCHEDULE[0])
    data["surprise"] = 1
    with pytest.raises(ValueError, match="surprise"):
        fault_from_dict(data)


def test_required_fields_enforced():
    with pytest.raises(ValueError, match="start_s"):
        fault_from_dict({"kind": "channel_outage"})


def test_invalid_fault_rejected_at_load():
    # Hand-edited fixture with an impossible fault: validation happens
    # in the FaultSpec constructor at load time.
    data = fault_to_dict(SCHEDULE[0])
    data["duration_s"] = -1.0
    with pytest.raises(ValueError):
        fault_from_dict(data)


def test_missing_faults_list_rejected():
    with pytest.raises(ValueError, match="faults"):
        schedule_from_dict({"schema": FAULT_SCHEMA_VERSION})


def test_defaults_fill_in():
    spec = fault_from_dict(
        {"kind": "channel_outage", "start_s": 1.0, "duration_s": 2.0, "channel": 4}
    )
    assert spec == FaultSpec("channel_outage", 1.0, 2.0, channel=4)
