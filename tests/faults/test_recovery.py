"""End-to-end fault-recovery acceptance tests (the Figure 18 scenario).

Two calibrated scenarios on a small device, each run with and without
guardrails:

* **Recovery** — the latency tenant's channels slow down 2x mid-run
  while its telemetry simultaneously feeds the controller NaN garbage.
  With guardrails the watchdog cycles fallback -> probe -> reenable and
  the post-recovery P99 returns to within 15% of the pre-fault value;
  without them the NaN observations poison every agent's Eq. 2 blended
  reward.
* **Harm** — NaN corruption alone, with the latency tenant's gSB
  pre-seeded in the pool.  The poisoned PPO update turns the raw
  bandwidth tenant's network weights to NaN, freezing its greedy policy
  onto action 0 (argmax over NaN logits) = Harvest(1ch): it steals the
  latency tenant's offered channels and measurably worsens the victim's
  post-fault P99.  Guardrails sanitize the NaNs before they reach the
  reward path, so the same run stays healthy.
"""

import math

import pytest

from repro.config import RLConfig, SSDConfig
from repro.core.actionspace import ActionSpace
from repro.faults import agent_corruption, scenario_phases, slowdown_corruption_scenario
from repro.harness import Experiment, VssdPlan
from repro.harness.telemetry import events_to_csv
from repro.rl.nets import PolicyValueNet

import numpy as np

FAST = SSDConfig(
    num_channels=4,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=32,
    min_superblock_blocks=4,
)
RL = RLConfig(decision_interval_s=0.5, batch_size=8)
#: P99 of each workload alone under hardware isolation on FAST (seed 3);
#: used as the SLO so violation fractions are meaningful.
SLOS = {"ycsb": 13085.0, "terasort": 239516.0}


def _plans():
    return [
        VssdPlan("ycsb", slo_latency_us=SLOS["ycsb"]),
        VssdPlan("terasort", slo_latency_us=SLOS["terasort"]),
    ]


def _net(seed: int = 0) -> PolicyValueNet:
    space = ActionSpace(FAST.channel_write_bandwidth_mbps)
    return PolicyValueNet(
        RL.state_dim, space.num_actions, (8, 8), rng=np.random.default_rng(seed)
    )


def _nan_rewards(exp: Experiment) -> int:
    return sum(
        1
        for agent in exp.controller.agents.values()
        for reward in agent.rewards_seen
        if math.isnan(reward)
    )


def _run_recovery(guardrails: bool):
    """Slowdown + corruption on the latency tenant; 20 s run."""
    faults = slowdown_corruption_scenario(
        "ycsb",
        [0, 1],
        slowdown_factor=2.0,
        fault_start_s=6.0,
        fault_duration_s=4.0,
        corruption_start_s=6.5,
        corruption_duration_s=3.0,
    )
    exp = Experiment(
        _plans(),
        "fleetio",
        ssd_config=FAST,
        rl_config=RL,
        seed=3,
        pretrained_net=_net(),
        fleetio_kwargs={"unified_alpha_only": True},
        faults=faults,
        guardrails=guardrails,
    )
    result = exp.run(20.0, 2.0)
    monitor = exp.monitors["ycsb"]
    phases = scenario_phases(2.0, 6.0, 10.0, 20.0)
    p99 = {
        name: monitor.latency_percentile_between(start, end, 99)
        for name, (start, end) in phases.items()
    }
    return exp, result, p99


def _run_harm(guardrails: bool):
    """Corruption only, latency tenant's gSB pre-seeded in the pool."""
    exp = Experiment(
        _plans(),
        "fleetio",
        ssd_config=FAST,
        rl_config=RL,
        seed=3,
        pretrained_net=_net(seed=4),
        fleetio_kwargs={"unified_alpha_only": True},
        faults=[agent_corruption("terasort", 4.0, 1.5)],
        guardrails=guardrails,
    )
    exp.build()
    home = exp.virt.vssd_by_name("ycsb")
    seeded = exp.virt.gsb_manager.make_harvestable(
        home, FAST.channel_write_bandwidth_mbps + 1.0
    )
    assert seeded is not None
    exp.run(16.0, 2.0)
    monitor = exp.monitors["ycsb"]
    return exp, {
        "pre": monitor.latency_percentile_between(2.0, 4.0, 99),
        "post": monitor.latency_percentile_between(6.0, 16.0, 99),
    }


@pytest.fixture(scope="module")
def recovery_guarded():
    return _run_recovery(True)


@pytest.fixture(scope="module")
def recovery_raw():
    return _run_recovery(False)


@pytest.fixture(scope="module")
def harm_guarded():
    return _run_harm(True)


@pytest.fixture(scope="module")
def harm_raw():
    return _run_harm(False)


# ----------------------------------------------------------------------
# Recovery scenario
# ----------------------------------------------------------------------
def test_guarded_run_completes_without_nan_rewards(recovery_guarded):
    exp, _result, _p99 = recovery_guarded
    assert _nan_rewards(exp) == 0
    assert exp.guardrails.sanitized_windows > 0


def test_guarded_watchdog_full_cycle(recovery_guarded):
    _exp, result, _p99 = recovery_guarded
    transitions = [e.phase for e in result.guardrail_events if e.kind == "watchdog"]
    assert transitions == ["fallback", "probe", "reenable"]
    targets = {e.target for e in result.guardrail_events if e.kind == "watchdog"}
    assert targets == {"vssd:ycsb"}


def test_guarded_post_recovery_p99_within_15_percent(recovery_guarded):
    _exp, _result, p99 = recovery_guarded
    assert p99["during"] > 2.0 * p99["pre"]  # the fault actually hurt
    assert p99["post"] <= 1.15 * p99["pre"]


def test_fault_events_recorded(recovery_guarded):
    _exp, result, _p99 = recovery_guarded
    phases = [(e.kind, e.phase) for e in result.fault_events]
    assert phases.count(("channel_slowdown", "start")) == 2
    assert phases.count(("channel_slowdown", "end")) == 2
    assert ("agent_corruption", "start") in phases
    assert ("agent_corruption", "end") in phases


def test_event_export_includes_watchdog_transitions(recovery_guarded, tmp_path):
    _exp, result, _p99 = recovery_guarded
    path = tmp_path / "events.csv"
    events_to_csv(result.fault_events + result.guardrail_events, path)
    text = path.read_text()
    for phase in ("fallback", "probe", "reenable"):
        assert f"watchdog,{phase}" in text
    assert "channel_slowdown,start" in text


def test_raw_run_rewards_poisoned(recovery_raw):
    exp, result, _p99 = recovery_raw
    assert _nan_rewards(exp) > 0
    assert result.guardrail_events == []


# ----------------------------------------------------------------------
# Harm scenario: raw control measurably hurts the victim tenant
# ----------------------------------------------------------------------
def test_raw_policy_freezes_onto_harvest(harm_raw):
    exp, _p99 = harm_raw
    bandwidth_vssd = exp.virt.vssd_by_name("terasort")
    agent = exp.controller.agents[bandwidth_vssd.vssd_id]
    assert _nan_rewards(exp) > 0
    frozen_tail = agent.actions_taken[12:]
    assert len(frozen_tail) >= 10
    assert set(frozen_tail) == {0}
    assert exp.controller.action_space.kind(0) == "harvest"
    assert exp.virt.gsb_manager.stats.gsbs_harvested > 0


def test_raw_post_fault_p99_measurably_worse(harm_raw, harm_guarded):
    _raw_exp, raw_p99 = harm_raw
    guarded_exp, guarded_p99 = harm_guarded
    assert _nan_rewards(guarded_exp) == 0
    # Same fault, same seed: guardrails keep the victim healthy...
    assert guarded_p99["post"] <= 1.15 * guarded_p99["pre"]
    # ...while the raw frozen harvester measurably hurts it.
    assert raw_p99["post"] > 1.5 * guarded_p99["post"]
