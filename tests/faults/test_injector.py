"""Tests for the declarative fault injector."""

import math

import pytest

from repro.core.monitor import VssdMonitor
from repro.faults import (
    FaultInjector,
    FaultSpec,
    agent_corruption,
    channel_outage,
    channel_slowdown,
    gc_storm,
    latency_spike,
    monitor_dropout,
)
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def virt(small_config):
    virt = StorageVirtualizer(config=small_config)
    virt.create_vssd("a", [0, 1], slo_latency_us=2000.0)
    virt.create_vssd("b", [2, 3], slo_latency_us=2000.0)
    return virt


def monitor_map(virt):
    monitors = {}
    for vssd in virt.vssds.values():
        monitor = VssdMonitor(vssd)
        virt.dispatcher.add_completion_callback(monitor.on_complete)
        monitors[vssd.name] = monitor
    return monitors


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec("solar_flare", 1.0, 1.0, channel=0)


def test_channel_fault_needs_channel():
    with pytest.raises(ValueError):
        FaultSpec("channel_slowdown", 1.0, 1.0, factor=2.0)


def test_vssd_fault_needs_vssd():
    with pytest.raises(ValueError):
        FaultSpec("agent_corruption", 1.0, 1.0)


def test_nonpositive_duration_rejected():
    with pytest.raises(ValueError):
        channel_slowdown(0, 2.0, start_s=1.0, duration_s=0.0)


def test_nonpositive_slowdown_rejected():
    with pytest.raises(ValueError):
        channel_slowdown(0, 0.0, start_s=1.0, duration_s=1.0)


def test_arm_in_the_past_rejected(virt):
    virt.sim.run_until_seconds(5.0)
    injector = FaultInjector(virt)
    with pytest.raises(ValueError):
        injector.arm([channel_slowdown(0, 2.0, start_s=1.0, duration_s=1.0)])


def test_arm_unknown_channel_rejected(virt):
    injector = FaultInjector(virt)
    with pytest.raises(ValueError):
        injector.arm([channel_slowdown(99, 2.0, start_s=1.0, duration_s=1.0)])


def test_arm_monitor_fault_without_monitor_rejected(virt):
    injector = FaultInjector(virt)
    with pytest.raises(KeyError):
        injector.arm([agent_corruption("a", 1.0, 1.0)])


# ----------------------------------------------------------------------
# Channel faults
# ----------------------------------------------------------------------
def test_slowdown_applies_and_clears_on_schedule(virt):
    injector = FaultInjector(virt)
    injector.arm([channel_slowdown(0, 4.0, start_s=1.0, duration_s=2.0)])
    channel = virt.ssd.channels[0]
    assert not channel.degraded
    virt.sim.run_until_seconds(1.5)
    assert channel.fault_slowdown == 4.0
    assert channel.degraded
    assert virt.ssd.degraded_channels() == [0]
    virt.sim.run_until_seconds(3.5)
    assert channel.fault_slowdown == 1.0
    assert not channel.degraded
    assert virt.ssd.degraded_channels() == []


def test_overlapping_faults_compose(virt):
    injector = FaultInjector(virt)
    injector.arm(
        [
            channel_slowdown(0, 2.0, start_s=1.0, duration_s=4.0),
            channel_slowdown(0, 3.0, start_s=2.0, duration_s=1.0),
            latency_spike(0, 500.0, start_s=2.0, duration_s=1.0),
        ]
    )
    channel = virt.ssd.channels[0]
    virt.sim.run_until_seconds(2.5)
    assert channel.fault_slowdown == 6.0  # factors multiply
    assert channel.fault_extra_latency_us == 500.0
    virt.sim.run_until_seconds(3.5)
    assert channel.fault_slowdown == 2.0  # inner fault cleared, outer holds
    assert channel.fault_extra_latency_us == 0.0
    virt.sim.run_until_seconds(5.5)
    assert not channel.degraded


def test_outage_refuses_capacity(virt):
    injector = FaultInjector(virt)
    injector.arm([channel_outage(0, start_s=1.0, duration_s=1.0)])
    channel = virt.ssd.channels[0]
    virt.sim.run_until_seconds(1.5)
    assert channel.offline
    assert not channel.has_capacity()
    assert channel.queue_headroom() == 0
    virt.sim.run_until_seconds(2.5)
    assert channel.has_capacity()


def test_slowdown_stretches_service_latency(virt):
    monitors = monitor_map(virt)
    injector = FaultInjector(virt, monitors=monitors)
    injector.arm([channel_slowdown(0, 8.0, start_s=1.0, duration_s=2.0)])
    vssd = virt.vssd_by_name("a")
    size = virt.config.page_size

    def submit_reads(base_lpn):
        for i in range(50):
            virt.dispatcher.submit(
                IoRequest(vssd.vssd_id, "read", base_lpn + i, 1, size, virt.sim.now)
            )

    # Warm a few LPNs so reads hit mapped pages.
    vssd.ftl.warm_fill(range(200))
    submit_reads(0)
    virt.sim.run_until_seconds(1.0)
    healthy = monitors["a"].snapshot_window(1.0)
    submit_reads(0)
    virt.sim.run_until_seconds(2.0)
    faulted = monitors["a"].snapshot_window(2.0)
    assert faulted.avg_latency_us > 2.0 * healthy.avg_latency_us


# ----------------------------------------------------------------------
# GC storm
# ----------------------------------------------------------------------
def test_gc_storm_raises_and_restores_threshold(virt):
    injector = FaultInjector(virt)
    injector.arm([gc_storm("a", start_s=1.0, duration_s=1.0, threshold=0.9)])
    ftl = virt.vssd_by_name("a").ftl
    original = ftl.gc_threshold
    virt.sim.run_until_seconds(1.5)
    assert ftl.gc_threshold == 0.9
    virt.sim.run_until_seconds(2.5)
    assert ftl.gc_threshold == original


# ----------------------------------------------------------------------
# Monitor faults
# ----------------------------------------------------------------------
def test_monitor_dropout_drops_completions(virt):
    monitors = monitor_map(virt)
    injector = FaultInjector(virt, monitors=monitors)
    injector.arm([monitor_dropout("a", start_s=1.0, duration_s=1.0)])
    vssd = virt.vssd_by_name("a")
    vssd.ftl.warm_fill(range(100))
    virt.sim.run_until_seconds(1.5)
    assert monitors["a"].dropout
    for i in range(10):
        virt.dispatcher.submit(
            IoRequest(vssd.vssd_id, "read", i, 1, virt.config.page_size, virt.sim.now)
        )
    virt.sim.run_until_seconds(1.9)
    stats = monitors["a"].snapshot_window(1.9)
    assert stats.completed == 0
    assert monitors["a"].dropped_completions == 10
    virt.sim.run_until_seconds(2.5)
    assert not monitors["a"].dropout


def test_agent_corruption_nans_window_snapshots(virt):
    monitors = monitor_map(virt)
    injector = FaultInjector(virt, monitors=monitors)
    injector.arm([agent_corruption("a", start_s=1.0, duration_s=1.0)])
    virt.sim.run_until_seconds(1.5)
    stats = monitors["a"].snapshot_window(1.5)
    assert math.isnan(stats.avg_bw_mbps)
    assert math.isnan(stats.slo_violation_frac)
    virt.sim.run_until_seconds(2.5)
    clean = monitors["a"].snapshot_window(2.5)
    assert math.isfinite(clean.avg_bw_mbps)


def test_event_log_records_start_and_end(virt):
    injector = FaultInjector(virt)
    injector.arm([channel_slowdown(1, 3.0, start_s=1.0, duration_s=1.0)])
    virt.sim.run_until_seconds(3.0)
    phases = [(e.kind, e.phase, e.target) for e in injector.event_log]
    assert phases == [
        ("channel_slowdown", "start", "channel:1"),
        ("channel_slowdown", "end", "channel:1"),
    ]
    assert injector.event_log[0].time_s == pytest.approx(1.0)
    assert injector.event_log[1].time_s == pytest.approx(2.0)
