"""Tests for observation sanitization, the watchdog, and trust clamping."""

import math

import pytest

from repro.core.actionspace import ActionSpace
from repro.core.monitor import WindowStats
from repro.faults import (
    GuardrailConfig,
    Guardrails,
    VssdWatchdog,
    WatchdogState,
    sanitize_stats,
)


def window(violation=0.0, completed=100, bw=50.0, **overrides):
    base = dict(
        vssd_id=0,
        window_start_s=0.0,
        window_end_s=1.0,
        avg_bw_mbps=bw,
        avg_iops=1000.0,
        avg_latency_us=500.0,
        slo_violation_frac=violation,
        queue_delay_us=50.0,
        rw_ratio=0.5,
        avail_capacity_frac=0.8,
        in_gc=False,
        cur_priority=1,
        completed=completed,
        reads=completed // 2,
        writes=completed - completed // 2,
    )
    base.update(overrides)
    return WindowStats(**base)


def corrupt_window(**overrides):
    nan = float("nan")
    return window(
        violation=nan,
        bw=nan,
        avg_iops=nan,
        avg_latency_us=nan,
        queue_delay_us=nan,
        rw_ratio=nan,
        avail_capacity_frac=nan,
        **overrides,
    )


# ----------------------------------------------------------------------
# Sanitization
# ----------------------------------------------------------------------
def test_sanitize_passes_clean_stats_through():
    clean = window()
    result, replaced = sanitize_stats(clean)
    assert replaced == 0
    assert result is clean


def test_sanitize_uses_last_good_snapshot():
    good = window(bw=123.0, violation=0.25)
    result, replaced = sanitize_stats(corrupt_window(), good)
    assert replaced == 7
    assert result.avg_bw_mbps == 123.0
    assert result.slo_violation_frac == 0.25
    assert result.completed == 100  # int fields untouched


def test_sanitize_without_history_falls_back_to_zero():
    result, replaced = sanitize_stats(corrupt_window())
    assert replaced == 7
    assert result.avg_bw_mbps == 0.0
    assert math.isfinite(result.slo_violation_frac)


def test_sanitize_handles_inf():
    result, replaced = sanitize_stats(window(bw=float("inf")), window(bw=7.0))
    assert replaced == 1
    assert result.avg_bw_mbps == 7.0


# ----------------------------------------------------------------------
# Watchdog state machine
# ----------------------------------------------------------------------
@pytest.fixture
def config():
    return GuardrailConfig(
        collapse_violation_frac=0.5,
        collapse_windows=3,
        cooldown_windows=2,
        probe_windows=2,
        trust_decay=0.5,
        trust_recovery=0.1,
    )


def test_fallback_after_k_collapsed_windows(config):
    dog = VssdWatchdog(0, "a", config)
    assert dog.observe(window(violation=0.9)) is None
    assert dog.observe(window(violation=0.9)) is None
    assert dog.observe(window(violation=0.9)) == "fallback"
    assert dog.state is WatchdogState.FALLBACK
    assert dog.suspended
    assert dog.trust == 0.5


def test_healthy_window_resets_collapse_streak(config):
    dog = VssdWatchdog(0, "a", config)
    dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.0))  # streak broken
    assert dog.observe(window(violation=0.9)) is None
    assert dog.state is WatchdogState.NORMAL


def test_empty_windows_are_neutral(config):
    dog = VssdWatchdog(0, "a", config)
    dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.9))
    assert dog.observe(window(completed=0)) is None
    # The streak survives the empty window.
    assert dog.observe(window(violation=0.9)) == "fallback"


def test_recovery_path_probe_then_reenable(config):
    dog = VssdWatchdog(0, "a", config)
    for _ in range(3):
        dog.observe(window(violation=0.9))
    assert dog.state is WatchdogState.FALLBACK
    # Cooldown: stays in fallback while still collapsed.
    assert dog.observe(window(violation=0.9)) is None
    assert dog.observe(window(violation=0.0)) == "probe"
    assert dog.state is WatchdogState.PROBING
    assert dog.observe(window(violation=0.0)) == "reenable"
    assert dog.state is WatchdogState.NORMAL
    assert not dog.suspended


def test_probe_relapse_returns_to_fallback(config):
    dog = VssdWatchdog(0, "a", config)
    for _ in range(3):
        dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.0))
    assert dog.state is WatchdogState.PROBING
    dog.observe(window(violation=0.9))
    assert dog.state is WatchdogState.FALLBACK


def test_trust_decays_per_fallback_and_recovers(config):
    dog = VssdWatchdog(0, "a", config)
    for _ in range(3):
        dog.observe(window(violation=0.9))
    assert dog.trust == 0.5
    # Recover, then collapse again: trust halves once more.
    dog.observe(window(violation=0.9))
    dog.observe(window(violation=0.0))
    dog.observe(window(violation=0.0))
    assert dog.state is WatchdogState.NORMAL
    for _ in range(3):
        dog.observe(window(violation=0.9))
    assert dog.trust == 0.25
    assert dog.fallback_count == 2


def test_trust_regained_by_healthy_normal_windows(config):
    dog = VssdWatchdog(0, "a", config)
    dog.trust = 0.5
    for _ in range(5):
        dog.observe(window(violation=0.0))
    assert dog.trust == pytest.approx(1.0)


def test_trust_floor(config):
    dog = VssdWatchdog(0, "a", config)
    dog.trust = 0.15
    dog._enter_fallback()
    assert dog.trust == config.min_trust


# ----------------------------------------------------------------------
# Facade: clamping and event logging
# ----------------------------------------------------------------------
def test_clamp_action_caps_harvest_level(config):
    rails = Guardrails(config)
    rails.register(0, "a")
    space = ActionSpace(100.0)
    rails.watchdogs[0].trust = 0.5
    aggressive = space.index_of("harvest", 4)
    clamped = rails.clamp_action(0, aggressive, space)
    assert space.kind(clamped) == "harvest"
    assert space.level(clamped) == 2  # floor(0.5 * 4)
    assert rails.clamped_actions == 1


def test_clamp_action_passes_mild_and_non_harvest(config):
    rails = Guardrails(config)
    rails.register(0, "a")
    space = ActionSpace(100.0)
    rails.watchdogs[0].trust = 0.5
    mild = space.index_of("harvest", 1)
    assert rails.clamp_action(0, mild, space) == mild
    priority = space.indices_of("set_priority")[0]
    assert rails.clamp_action(0, priority, space) == priority
    rails.watchdogs[0].trust = 1.0
    aggressive = space.index_of("harvest", 4)
    assert rails.clamp_action(0, aggressive, space) == aggressive


def test_facade_sanitize_logs_and_remembers(config):
    rails = Guardrails(config)
    rails.register(0, "a")
    good = window(bw=42.0)
    assert rails.sanitize(0, good, now_s=1.0) is good
    cleaned = rails.sanitize(0, corrupt_window(), now_s=2.0)
    assert cleaned.avg_bw_mbps == 42.0
    assert rails.sanitized_windows == 1
    assert rails.sanitized_fields == 7
    [event] = rails.event_log
    assert (event.kind, event.phase, event.target) == ("sanitize", "apply", "vssd:a")


def test_facade_observe_logs_transitions(config):
    rails = Guardrails(config)
    rails.register(0, "a")
    for _ in range(3):
        transition = rails.observe(0, window(violation=0.9), now_s=3.0)
    assert transition == "fallback"
    assert rails.suspended(0)
    [event] = rails.event_log
    assert (event.source, event.kind, event.phase) == ("guardrail", "watchdog", "fallback")
    assert "trust=0.50" in event.detail
