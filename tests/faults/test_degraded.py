"""Degraded-channel awareness in the gSB manager and admission control."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.hbt import HarvestedBlockTable
from repro.virt import StorageVirtualizer
from repro.virt.actions import HarvestAction, MakeHarvestableAction, SetPriorityAction
from repro.virt.gsb_manager import GsbManager
from repro.virt.vssd import Vssd


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=8,
        pages_per_block=16,
        min_superblock_blocks=2,
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    hbt = HarvestedBlockTable()
    manager = GsbManager(ssd, hbt)

    def make_vssd(vssd_id, channels):
        ftl = VssdFtl(vssd_id, ssd, hbt=hbt)
        ftl.adopt_blocks(ssd.allocate_channels(vssd_id, channels))
        vssd = Vssd(vssd_id, f"v{vssd_id}", ftl, channels)
        manager.register_vssd(vssd)
        return vssd

    home = make_vssd(0, [0, 1])
    harvester = make_vssd(1, [2, 3])
    return config, sim, ssd, manager, home, harvester


def one_channel_bw(config):
    return config.channel_write_bandwidth_mbps + 1.0


def test_offer_skips_degraded_channels(world):
    config, _sim, ssd, manager, home, _harvester = world
    ssd.set_channel_fault(0, slowdown=4.0)
    gsb = manager.make_harvestable(home, 2 * config.channel_write_bandwidth_mbps + 1)
    assert gsb is not None
    assert gsb.channel_ids == [1]  # channel 0 refused


def test_harvest_skips_gsbs_on_degraded_channels(world):
    config, _sim, ssd, manager, home, harvester = world
    gsb = manager.make_harvestable(home, one_channel_bw(config))
    assert gsb.channel_ids == [0] or gsb.channel_ids == [1]
    faulted = gsb.channel_ids[0]
    ssd.set_channel_fault(faulted, extra_latency_us=1000.0)
    assert manager.harvest(harvester, one_channel_bw(config)) is None
    assert manager.stats.harvest_misses == 1


def test_reclaim_degraded_destroys_pooled_gsbs(world):
    config, _sim, ssd, manager, home, _harvester = world
    gsb = manager.make_harvestable(home, one_channel_bw(config))
    blocks_before = home.ftl.own_region.free_block_count_on(gsb.channel_ids[0])
    ssd.set_channel_fault(gsb.channel_ids[0], slowdown=2.0)
    assert manager.reclaim_degraded() == 1
    assert manager.pool.available() == 0
    assert gsb not in home.harvestable_gsbs
    assert (
        home.ftl.own_region.free_block_count_on(gsb.channel_ids[0]) > blocks_before
    )
    # No degraded channels -> fast no-op.
    ssd.clear_channel_fault(gsb.channel_ids[0])
    assert manager.reclaim_degraded() == 0


def test_reclaim_degraded_lazily_reclaims_in_use_gsbs(world):
    config, _sim, ssd, manager, home, harvester = world
    manager.make_harvestable(home, one_channel_bw(config))
    gsb = manager.harvest(harvester, one_channel_bw(config))
    assert gsb.in_use
    ssd.set_channel_fault(gsb.channel_ids[0], slowdown=2.0)
    assert manager.reclaim_degraded() == 1
    assert gsb.reclaiming
    # Unwritten gSB: all blocks were free, so reclamation completes.
    assert gsb not in harvester.harvested_gsbs


def test_release_harvested_returns_everything(world):
    config, _sim, _ssd, manager, home, harvester = world
    manager.make_harvestable(home, 2 * config.channel_write_bandwidth_mbps + 1)
    gsb = manager.harvest(harvester, one_channel_bw(config))
    assert gsb is not None
    assert manager.release_harvested(harvester) == 1
    assert manager.stats.gsbs_released_by_watchdog == 1
    assert harvester.harvested_gsbs == []
    assert manager.release_harvested(harvester) == 0


def test_admission_denies_degraded_vssd_harvesting():
    virt = StorageVirtualizer(config=SSDConfig(num_channels=4, chips_per_channel=2,
                                               blocks_per_chip=8, pages_per_block=16,
                                               min_superblock_blocks=2))
    a = virt.create_vssd("a", [0, 1])
    b = virt.create_vssd("b", [2, 3])
    a.degraded = True
    stats = virt.admission.stats
    virt.admission.submit(HarvestAction(a.vssd_id, 100.0))
    virt.admission.submit(MakeHarvestableAction(a.vssd_id, 100.0))
    assert stats.denied == 2
    assert stats.denied_degraded == 2
    assert virt.admission.pending_actions == 0
    # Priority changes and healthy tenants still pass.
    virt.admission.submit(SetPriorityAction(a.vssd_id, level=2))
    assert stats.priority_changes == 1
    virt.admission.submit(HarvestAction(b.vssd_id, 100.0))
    assert virt.admission.pending_actions == 1


def test_admission_batch_tick_pumps_degraded_reclaim():
    config = SSDConfig(num_channels=4, chips_per_channel=2, blocks_per_chip=8,
                       pages_per_block=16, min_superblock_blocks=2)
    virt = StorageVirtualizer(config=config)
    home = virt.create_vssd("home", [0, 1])
    virt.create_vssd("other", [2, 3])
    gsb = virt.gsb_manager.make_harvestable(
        home, config.channel_write_bandwidth_mbps + 1.0
    )
    virt.ssd.set_channel_fault(gsb.channel_ids[0], slowdown=3.0)
    virt.admission.start()
    virt.sim.run_until_seconds(0.2)
    assert virt.gsb_manager.stats.gsbs_reclaimed_degraded == 1
    assert virt.gsb_manager.pool.available() == 0
