"""Tests for the gSB manager: create, harvest, reclaim lifecycles."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.hbt import HarvestedBlockTable
from repro.virt.gsb_manager import GsbManager
from repro.virt.vssd import Vssd


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=8,
        pages_per_block=16,
        min_superblock_blocks=2,
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    hbt = HarvestedBlockTable()
    manager = GsbManager(ssd, hbt)

    def make_vssd(vssd_id, channels):
        ftl = VssdFtl(vssd_id, ssd, hbt=hbt)
        ftl.adopt_blocks(ssd.allocate_channels(vssd_id, channels))
        vssd = Vssd(vssd_id, f"v{vssd_id}", ftl, channels)
        manager.register_vssd(vssd)
        return vssd

    home = make_vssd(0, [0, 1])
    harvester = make_vssd(1, [2, 3])
    return config, sim, ssd, manager, home, harvester


def test_bandwidth_to_channels_rounds_down(world):
    config, _sim, _ssd, manager, *_ = world
    per = config.channel_write_bandwidth_mbps
    assert manager.bandwidth_to_channels(per * 2.5) == 2
    assert manager.bandwidth_to_channels(per * 0.9) == 0


def test_make_harvestable_creates_gsb(world):
    config, _sim, _ssd, manager, home, _harvester = world
    gsb = manager.make_harvestable(home, 2 * config.channel_write_bandwidth_mbps + 1)
    assert gsb is not None
    assert gsb.n_chls == 2
    assert gsb.capacity_blocks == 2 * config.min_superblock_blocks
    assert all(b.harvested_flag for b in gsb.blocks)
    assert gsb in home.harvestable_gsbs
    assert manager.pool.available() == 1


def test_make_harvestable_zero_bandwidth_noop(world):
    config, _sim, _ssd, manager, home, _harvester = world
    assert manager.make_harvestable(home, 0.0) is None
    assert manager.pool.available() == 0


def test_free_block_floor_respected(world):
    config, _sim, _ssd, manager, home, _ = world
    # Consume blocks until free fraction is below the 25% floor.
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    home.ftl.warm_fill(range(int(total_pages * 0.8)))
    gsb = manager.make_harvestable(home, 2 * config.channel_write_bandwidth_mbps + 1)
    assert gsb is None


def test_repeat_offers_do_not_duplicate(world):
    config, _sim, _ssd, manager, home, _ = world
    bw = 2 * config.channel_write_bandwidth_mbps + 1
    first = manager.make_harvestable(home, bw)
    second = manager.make_harvestable(home, bw)
    assert first is not None
    assert second is None  # target already met
    assert home.offered_channel_count() == 2


def test_harvest_installs_region(world):
    config, _sim, _ssd, manager, home, harvester = world
    bw = config.channel_write_bandwidth_mbps + 1
    manager.make_harvestable(home, bw)
    gsb = manager.harvest(harvester, bw)
    assert gsb is not None
    assert gsb.in_use
    assert gsb.harvest_vssd == harvester.vssd_id
    assert gsb.region in harvester.ftl.harvest_regions
    assert gsb in harvester.harvested_gsbs
    assert harvester.harvested_channel_count() == gsb.n_chls


def test_harvest_empty_pool_misses(world):
    config, _sim, _ssd, manager, _home, harvester = world
    assert manager.harvest(harvester, 100.0) is None
    assert manager.stats.harvest_misses == 1


def test_cannot_harvest_own_gsb(world):
    config, _sim, _ssd, manager, home, _harvester = world
    bw = config.channel_write_bandwidth_mbps + 1
    manager.make_harvestable(home, bw)
    assert manager.harvest(home, bw) is None


def test_reclaim_unused_returns_blocks_immediately(world):
    config, _sim, _ssd, manager, home, _harvester = world
    bw = 2 * config.channel_write_bandwidth_mbps + 1
    gsb = manager.make_harvestable(home, bw)
    free_before = home.ftl.own_region.free_block_count()
    manager.reclaim_excess(home, 0)
    assert manager.pool.available() == 0
    assert home.harvestable_gsbs == []
    assert home.ftl.own_region.free_block_count() == free_before + gsb.capacity_blocks
    assert all(not b.harvested_flag for b in gsb.blocks)


def test_make_harvestable_smaller_target_reclaims(world):
    config, _sim, _ssd, manager, home, _harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, 2 * per + 1)
    # Lowering the target to one channel reclaims the 2-channel gSB and
    # offers a fresh 1-channel one.
    manager.make_harvestable(home, per + 1)
    assert home.offered_channel_count() == 1
    assert manager.stats.gsbs_destroyed_unused == 1


def test_lazy_reclaim_of_in_use_gsb(world):
    config, sim, _ssd, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    gsb = manager.harvest(harvester, per + 1)
    # Harvester writes into the gSB.
    target_channel = gsb.channel_ids[0]
    lpn = 50_000
    wrote = 0
    while wrote < config.pages_per_block:
        _done, channel = harvester.ftl.write_page(lpn)
        lpn += 1
        if channel == target_channel:
            wrote += 1
    free_before = home.ftl.own_region.free_block_count()
    capacity = gsb.capacity_blocks
    manager.reclaim_excess(home, 0)
    assert gsb.reclaiming
    manager.pump_reclaims()
    # All blocks eventually return home and the reclaim finalizes.
    assert manager.reclaiming_gsbs() == []
    assert home.ftl.own_region.free_block_count() == free_before + capacity
    assert gsb.region not in harvester.ftl.harvest_regions
    assert gsb not in harvester.harvested_gsbs
    # Migrated data must still be readable from the harvester.
    assert harvester.ftl.page_location(50_000) is not None


def test_lazy_reclaim_preserves_harvester_data(world):
    config, _sim, _ssd, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    manager.harvest(harvester, per + 1)
    lpns = list(range(80_000, 80_000 + 3 * config.pages_per_block))
    for lpn in lpns:
        harvester.ftl.write_page(lpn)
    manager.reclaim_excess(home, 0)
    manager.pump_reclaims()
    for lpn in lpns:
        pointer = harvester.ftl.page_location(lpn)
        assert pointer is not None
        assert pointer.block.page_lpns[pointer.page] == lpn


def test_unregistered_vssd_raises(world):
    config, _sim, ssd, manager, home, _harvester = world
    with pytest.raises(KeyError):
        manager._vssd_of(99)


def test_stats_track_lifecycle(world):
    config, _sim, _ssd, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    manager.harvest(harvester, per + 1)
    manager.reclaim_excess(home, 0)
    manager.pump_reclaims()
    stats = manager.stats
    assert stats.gsbs_created == 1
    assert stats.gsbs_harvested == 1
    assert stats.gsbs_reclaimed_lazily == 1
    assert stats.blocks_returned == stats.blocks_offered
