"""Tests for the storage virtualizer: vSSD lifecycle, placeholder."""

import pytest

from repro.sched.policies import TokenBucketStridePolicy
from repro.virt import PLACEHOLDER_VSSD_ID, StorageVirtualizer


@pytest.fixture
def virt(small_config):
    return StorageVirtualizer(config=small_config)


def test_hardware_vssd_owns_whole_channels(virt, small_config):
    vssd = virt.create_vssd("a", [0, 1])
    owned = sum(vssd.ftl._own_blocks_per_channel.values())
    assert owned == 2 * small_config.blocks_per_channel
    assert vssd.isolation == "hardware"


def test_software_vssds_share_channels(virt, small_config):
    half = small_config.blocks_per_channel // 2
    a = virt.create_vssd("a", [0, 1, 2, 3], isolation="software", blocks_per_channel=half)
    b = virt.create_vssd("b", [0, 1, 2, 3], isolation="software", blocks_per_channel=half)
    assert set(a.ftl._own_blocks_per_channel) == {0, 1, 2, 3}
    assert set(b.ftl._own_blocks_per_channel) == {0, 1, 2, 3}


def test_software_requires_block_count(virt):
    with pytest.raises(ValueError):
        virt.create_vssd("a", [0], isolation="software")


def test_exhausted_channels_rejected(virt):
    virt.create_vssd("a", [0, 1])
    with pytest.raises(ValueError):
        virt.create_vssd("b", [0, 1])


def test_vssd_by_name(virt):
    virt.create_vssd("alpha", [0])
    assert virt.vssd_by_name("alpha").name == "alpha"
    with pytest.raises(KeyError):
        virt.vssd_by_name("missing")


def test_deallocation_moves_blocks_to_placeholder(virt, small_config):
    vssd = virt.create_vssd("a", [0, 1])
    vssd.ftl.warm_fill(range(100))
    virt.deallocate_vssd(vssd.vssd_id)
    placeholder = virt.placeholder
    assert placeholder is not None
    owned = sum(placeholder.ftl._own_blocks_per_channel.values())
    assert owned == 2 * small_config.blocks_per_channel
    # All data was erased before the transfer (security, Section 5).
    for channel in virt.ssd.channels[:2]:
        for block in channel.blocks:
            assert block.is_free


def test_deallocated_capacity_is_harvestable(virt, small_config):
    vssd = virt.create_vssd("a", [0, 1])
    survivor = virt.create_vssd("b", [2, 3])
    virt.deallocate_vssd(vssd.vssd_id)
    virt.offer_placeholder_capacity()
    assert virt.gsb_manager.pool.available() > 0
    per = small_config.channel_write_bandwidth_mbps
    gsb = virt.gsb_manager.harvest(survivor, per + 1)
    assert gsb is not None
    assert gsb.home_vssd == PLACEHOLDER_VSSD_ID


def test_deallocate_unknown_raises(virt):
    with pytest.raises(KeyError):
        virt.deallocate_vssd(42)


def test_priority_routed_to_policy(virt):
    from repro.sched.request import Priority
    from repro.virt.actions import SetPriorityAction

    vssd = virt.create_vssd("a", [0])
    virt.admission.submit(SetPriorityAction(vssd.vssd_id, Priority.LOW))
    assert virt.policy.get_priority(vssd.vssd_id) is Priority.LOW


def test_custom_scheduling_policy(small_config):
    policy = TokenBucketStridePolicy(rate_bytes_per_us=1000.0, burst_bytes=1 << 20)
    virt = StorageVirtualizer(config=small_config, policy=policy)
    virt.create_vssd("a", [0])
    assert virt.dispatcher.policy is policy
