"""Tests for ghost superblocks and the gSB pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd.geometry import FlashBlock
from repro.virt import GhostSuperblock, GsbPool


def _blocks(n=4, channel=0):
    return [FlashBlock(channel, 0, i, pages_per_block=4) for i in range(n)]


def _gsb(n_chls=1, home=0, n_blocks=4):
    return GhostSuperblock(n_chls=n_chls, blocks=_blocks(n_blocks), home_vssd=home)


class TestGhostSuperblock:
    def test_metadata_defaults(self):
        gsb = _gsb()
        # Figure 7's fields: n_chls, capacity, in_use, home, harvester.
        assert gsb.n_chls == 1
        assert gsb.capacity_blocks == 4
        assert gsb.in_use is False
        assert gsb.home_vssd == 0
        assert gsb.harvest_vssd is None

    def test_capacity_bytes(self):
        gsb = _gsb(n_blocks=3)
        assert gsb.capacity_bytes(block_size=1024) == 3072

    def test_channel_ids(self):
        blocks = _blocks(2, channel=1) + _blocks(2, channel=3)
        gsb = GhostSuperblock(n_chls=2, blocks=blocks, home_vssd=0)
        assert gsb.channel_ids == [1, 3]

    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            GhostSuperblock(n_chls=1, blocks=[], home_vssd=0)

    def test_requires_channels(self):
        with pytest.raises(ValueError):
            GhostSuperblock(n_chls=0, blocks=_blocks(), home_vssd=0)


class TestGsbPool:
    def test_exact_fit_preferred(self):
        pool = GsbPool(max_channels=8)
        small = _gsb(n_chls=1)
        exact = _gsb(n_chls=3)
        big = _gsb(n_chls=5)
        for gsb in (small, exact, big):
            pool.insert(gsb)
        assert pool.acquire(3) is exact

    def test_smaller_before_larger(self):
        # Section 3.6.2: search smaller lists first, then larger.
        pool = GsbPool(max_channels=8)
        small = _gsb(n_chls=2)
        big = _gsb(n_chls=6)
        pool.insert(small)
        pool.insert(big)
        assert pool.acquire(4) is small

    def test_larger_as_last_resort(self):
        pool = GsbPool(max_channels=8)
        big = _gsb(n_chls=6)
        pool.insert(big)
        assert pool.acquire(2) is big

    def test_own_gsbs_excluded(self):
        # A vSSD may not harvest its own resources.
        pool = GsbPool(max_channels=4)
        mine = _gsb(n_chls=2, home=7)
        pool.insert(mine)
        assert pool.acquire(2, exclude_home=7) is None
        assert pool.acquire(2, exclude_home=8) is mine

    def test_newest_first_within_list(self):
        # New gSBs are inserted at the head of their list.
        pool = GsbPool(max_channels=4)
        old = _gsb(n_chls=2)
        new = _gsb(n_chls=2)
        pool.insert(old)
        pool.insert(new)
        assert pool.acquire(2) is new

    def test_in_use_gsb_rejected(self):
        pool = GsbPool(max_channels=4)
        gsb = _gsb()
        gsb.in_use = True
        with pytest.raises(ValueError):
            pool.insert(gsb)

    def test_oversized_gsb_rejected(self):
        pool = GsbPool(max_channels=2)
        with pytest.raises(ValueError):
            pool.insert(_gsb(n_chls=3))

    def test_remove(self):
        pool = GsbPool(max_channels=4)
        gsb = _gsb(n_chls=2)
        pool.insert(gsb)
        assert pool.remove(gsb) is True
        assert pool.remove(gsb) is False
        assert pool.available() == 0

    def test_available_counts(self):
        pool = GsbPool(max_channels=4)
        pool.insert(_gsb(n_chls=1))
        pool.insert(_gsb(n_chls=1))
        pool.insert(_gsb(n_chls=3))
        assert pool.available() == 3
        assert pool.available(1) == 2
        assert pool.available(2) == 0

    def test_request_clamped_to_pool_bounds(self):
        pool = GsbPool(max_channels=4)
        gsb = _gsb(n_chls=4)
        pool.insert(gsb)
        assert pool.acquire(99) is gsb

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=20),
        want=st.integers(min_value=1, max_value=8),
    )
    def test_best_fit_property(self, sizes, want):
        """Property: acquire returns an exact match when one exists,
        otherwise the largest smaller gSB, otherwise the smallest larger."""
        pool = GsbPool(max_channels=8)
        gsbs = [_gsb(n_chls=s) for s in sizes]
        for gsb in gsbs:
            pool.insert(gsb)
        got = pool.acquire(want)
        assert got is not None
        if want in sizes:
            assert got.n_chls == want
        elif any(s < want for s in sizes):
            assert got.n_chls == max(s for s in sizes if s < want)
        else:
            assert got.n_chls == min(sizes)
