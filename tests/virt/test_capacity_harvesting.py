"""Tests for capacity-purpose harvesting (the Section 5 extension)."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.ftl import OutOfSpaceError
from repro.ssd.hbt import HarvestedBlockTable
from repro.virt.gsb_manager import GsbManager
from repro.virt.vssd import Vssd


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=8,
        pages_per_block=16,
        min_superblock_blocks=4,
    )
    ssd = Ssd(config, Simulator())
    hbt = HarvestedBlockTable()
    manager = GsbManager(ssd, hbt)

    def make(vssd_id, channels):
        ftl = VssdFtl(vssd_id, ssd, hbt=hbt)
        ftl.adopt_blocks(ssd.allocate_channels(vssd_id, channels))
        vssd = Vssd(vssd_id, f"v{vssd_id}", ftl, channels)
        manager.register_vssd(vssd)
        return vssd

    return config, manager, make(0, [0, 1]), make(1, [2, 3])


def test_capacity_harvest_extends_usable_space(world):
    config, manager, home, harvester = world
    base = harvester.usable_capacity_pages()
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    gsb = manager.harvest(harvester, per + 1, purpose="capacity")
    assert gsb is not None
    gained = config.min_superblock_blocks * config.pages_per_block
    assert harvester.usable_capacity_pages() == base + gained
    assert harvester.harvested_capacity_pages() == gained


def test_bandwidth_harvest_adds_no_durable_capacity(world):
    config, manager, home, harvester = world
    base = harvester.usable_capacity_pages()
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    manager.harvest(harvester, per + 1, purpose="bandwidth")
    assert harvester.usable_capacity_pages() == base
    assert harvester.harvested_capacity_pages() == 0


def test_capacity_region_holds_more_data_than_own_space(world):
    """With a capacity gSB, the harvester stores a working set that
    exceeds its own logical capacity — impossible without the gSB."""
    config, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    own_pages = 2 * config.blocks_per_channel * config.pages_per_block
    # More unique data than the own space can hold once GC headroom is
    # accounted for (own raw capacity minus one GC reserve-ish margin).
    working_set = int(own_pages * 0.95)
    manager.make_harvestable(home, per + 1)
    manager.harvest(harvester, per + 1, purpose="capacity")
    for lpn in range(working_set):
        harvester.ftl.write_page(lpn)
    assert harvester.ftl.mapped_pages() == working_set
    for lpn in (0, working_set // 2, working_set - 1):
        pointer = harvester.ftl.page_location(lpn)
        assert pointer.block.page_lpns[pointer.page] == lpn


def test_capacity_region_compacts_in_place(world):
    """Overwrites inside a capacity region trigger in-region GC, not
    copy-back to the harvester's own blocks."""
    config, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    gsb = manager.harvest(harvester, per + 1, purpose="capacity")
    capacity = config.min_superblock_blocks * config.pages_per_block
    # Repeatedly overwrite a small set that maps into the region.
    lpns = list(range(90_000, 90_000 + capacity // 2))
    for _round in range(6):
        for lpn in lpns:
            harvester.ftl.write_page(lpn)
    # Data written into the region stays in the region's channel space
    # for at least part of the set (compaction kept it there).
    region_channels = set(gsb.channel_ids)
    in_region = sum(
        1
        for lpn in lpns
        if harvester.ftl.page_location(lpn).block.channel_id in region_channels
        and harvester.ftl.page_location(lpn).block.harvested_flag
    )
    assert in_region > 0


def test_capacity_exhaustion_raises(world):
    config, manager, home, harvester = world
    per = config.channel_write_bandwidth_mbps
    manager.make_harvestable(home, per + 1)
    manager.harvest(harvester, per + 1, purpose="capacity")
    raw_total = (
        2 * config.blocks_per_channel
        + config.min_superblock_blocks
    ) * config.pages_per_block
    with pytest.raises(OutOfSpaceError):
        for lpn in range(raw_total + 100):
            harvester.ftl.write_page(lpn)


def test_region_purpose_validation():
    from repro.ssd.ftl import WriteRegion

    with pytest.raises(ValueError):
        WriteRegion("r", purpose="latency")
