"""Stress/property tests for the gSB pool under random operations."""

from hypothesis import given, settings, strategies as st

from repro.ssd.geometry import FlashBlock
from repro.virt.gsb import GhostSuperblock, GsbPool


def _gsb(n_chls, home, counter=[0]):
    counter[0] += 1
    blocks = [FlashBlock(0, 0, counter[0] * 100 + i, 4) for i in range(2)]
    return GhostSuperblock(n_chls=n_chls, blocks=blocks, home_vssd=home)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "acquire", "remove"]),
            st.integers(1, 8),   # size of gSB / request
            st.integers(0, 3),   # home / requester id
        ),
        min_size=1,
        max_size=60,
    )
)
def test_pool_conserves_gsbs(ops):
    """gSBs never duplicate or vanish: pooled + acquired + removed ==
    inserted, and an acquired gSB is never one of the requester's own."""
    pool = GsbPool(max_channels=8)
    pooled: list = []
    acquired: list = []
    removed: list = []
    inserted = 0
    for op, size, who in ops:
        if op == "insert":
            gsb = _gsb(size, home=who)
            pool.insert(gsb)
            pooled.append(gsb)
            inserted += 1
        elif op == "acquire":
            got = pool.acquire(size, exclude_home=who)
            if got is not None:
                assert got.home_vssd != who
                assert got in pooled
                pooled.remove(got)
                acquired.append(got)
        else:
            if pooled:
                target = pooled[len(pooled) % max(len(pooled), 1) - 1]
                assert pool.remove(target)
                pooled.remove(target)
                removed.append(target)
        assert pool.available() == len(pooled)
        assert len(pooled) + len(acquired) + len(removed) == inserted
    # Everything still pooled is acquirable by a stranger.
    for _ in range(len(pooled)):
        assert pool.acquire(1, exclude_home=99) is not None
    assert pool.acquire(1, exclude_home=99) is None


def test_acquire_exhausts_pool_exactly_once():
    pool = GsbPool(max_channels=4)
    gsbs = [_gsb(n, home=0) for n in (1, 2, 3, 4)]
    for gsb in gsbs:
        pool.insert(gsb)
    seen = set()
    for _ in range(4):
        got = pool.acquire(2, exclude_home=1)
        assert got is not None
        assert id(got) not in seen
        seen.add(id(got))
    assert pool.acquire(1, exclude_home=1) is None
