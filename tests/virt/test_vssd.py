"""Tests for the vSSD abstraction."""

import pytest

from repro.sched.request import Priority
from repro.virt.vssd import Vssd


def _vssd(**kwargs):
    defaults = dict(
        vssd_id=0, name="v", ftl=None, channel_ids=[0, 1], isolation="hardware"
    )
    defaults.update(kwargs)
    return Vssd(**defaults)


def test_defaults():
    vssd = _vssd()
    assert vssd.priority is Priority.MEDIUM
    assert vssd.num_channels == 2
    assert vssd.tenant_class == "standard"
    assert not vssd.deallocated


def test_invalid_isolation_rejected():
    with pytest.raises(ValueError):
        _vssd(isolation="quantum")


def test_harvested_channel_count():
    class FakeGsb:
        n_chls = 2

    vssd = _vssd()
    vssd.harvested_gsbs = [FakeGsb(), FakeGsb()]
    assert vssd.harvested_channel_count() == 4


def test_offered_channel_count():
    class FakeGsb:
        n_chls = 3

    vssd = _vssd()
    vssd.harvestable_gsbs = [FakeGsb()]
    assert vssd.offered_channel_count() == 3
