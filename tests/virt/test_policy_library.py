"""Tests for the reusable admission-policy library."""

import pytest

from repro.sched.request import Priority
from repro.virt.actions import HarvestAction, MakeHarvestableAction, SetPriorityAction
from repro.virt.policies import (
    all_of,
    business_hours_freeze,
    cap_harvested_channels,
    cap_offered_fraction,
    deny_harvest_for_classes,
    deny_offer_for_classes,
)
from repro.virt.vssd import Vssd


def _vssd(tenant_class="standard", channels=8):
    return Vssd(0, "v", None, list(range(channels)), tenant_class=tenant_class)


class FakeGsb:
    def __init__(self, n_chls):
        self.n_chls = n_chls


def test_deny_harvest_for_spot():
    policy = deny_harvest_for_classes("spot")
    spot, standard = _vssd("spot"), _vssd("standard")
    harvest = HarvestAction(0, 100.0)
    assert policy(harvest, spot) is False
    assert policy(harvest, standard) is True
    # Other actions unaffected.
    assert policy(MakeHarvestableAction(0, 100.0), spot) is True


def test_deny_offer_for_premium():
    policy = deny_offer_for_classes("premium")
    premium = _vssd("premium")
    assert policy(MakeHarvestableAction(0, 100.0), premium) is False
    # Level-0 (reclaim) stays allowed — taking resources back is safe.
    assert policy(MakeHarvestableAction(0, 1e-9), premium) is True
    assert policy(HarvestAction(0, 100.0), premium) is True


def test_cap_harvested_channels():
    policy = cap_harvested_channels(2)
    vssd = _vssd()
    assert policy(HarvestAction(0, 100.0), vssd) is True
    vssd.harvested_gsbs = [FakeGsb(2)]
    assert policy(HarvestAction(0, 100.0), vssd) is False
    assert policy(SetPriorityAction(0, Priority.HIGH), vssd) is True


def test_cap_offered_fraction():
    policy = cap_offered_fraction(0.25)  # 2 of 8 channels
    vssd = _vssd(channels=8)
    assert policy(MakeHarvestableAction(0, 100.0), vssd) is True
    vssd.harvestable_gsbs = [FakeGsb(2)]
    assert policy(MakeHarvestableAction(0, 100.0), vssd) is False
    # Reclaiming is always allowed.
    assert policy(MakeHarvestableAction(0, 1e-9), vssd) is True


def test_business_hours_freeze():
    frozen = [True]
    policy = business_hours_freeze(lambda: frozen[0])
    vssd = _vssd()
    assert policy(HarvestAction(0, 100.0), vssd) is False
    assert policy(SetPriorityAction(0, Priority.LOW), vssd) is True
    frozen[0] = False
    assert policy(HarvestAction(0, 100.0), vssd) is True


def test_all_of_combines():
    policy = all_of(
        deny_harvest_for_classes("spot"),
        cap_harvested_channels(1),
    )
    spot = _vssd("spot")
    standard = _vssd("standard")
    standard.harvested_gsbs = [FakeGsb(1)]
    assert policy(HarvestAction(0, 100.0), spot) is False      # class veto
    assert policy(HarvestAction(0, 100.0), standard) is False  # cap veto
    assert policy(HarvestAction(0, 100.0), _vssd()) is True


def test_invalid_params():
    with pytest.raises(ValueError):
        cap_harvested_channels(-1)
    with pytest.raises(ValueError):
        cap_offered_fraction(1.5)


def test_integration_with_admission_controller(small_config):
    from repro.virt import StorageVirtualizer

    virt = StorageVirtualizer(config=small_config)
    spot = virt.create_vssd("spot", [0, 1], tenant_class="spot")
    donor = virt.create_vssd("donor", [2, 3])
    virt.admission.add_policy(deny_harvest_for_classes("spot"))
    per = small_config.channel_write_bandwidth_mbps
    virt.admission.submit(MakeHarvestableAction(donor.vssd_id, per + 1))
    virt.admission.submit(HarvestAction(spot.vssd_id, per + 1))
    virt.admission.process_batch()
    assert virt.admission.stats.denied == 1
    assert spot.harvested_channel_count() == 0
