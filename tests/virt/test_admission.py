"""Tests for admission control: batching, reordering, policies."""

import pytest

from repro.sched.request import Priority
from repro.virt import (
    HarvestAction,
    MakeHarvestableAction,
    SetPriorityAction,
    StorageVirtualizer,
)


@pytest.fixture
def virt(small_config):
    v = StorageVirtualizer(config=small_config)
    v.create_vssd("lat", [0, 1])
    v.create_vssd("bw", [2, 3])
    return v


def _warm(vssd, fraction=0.3):
    ftl = vssd.ftl
    pages = sum(ftl._own_blocks_per_channel.values()) * ftl.config.pages_per_block
    ftl.warm_fill(range(int(pages * fraction)))


def test_set_priority_applies_immediately(virt):
    lat = virt.vssd_by_name("lat")
    virt.admission.submit(SetPriorityAction(lat.vssd_id, Priority.HIGH))
    assert lat.priority is Priority.HIGH
    assert virt.policy.get_priority(lat.vssd_id) is Priority.HIGH
    assert virt.admission.pending_actions == 0


def test_harvest_actions_batched(virt):
    bw = virt.vssd_by_name("bw")
    virt.admission.submit(HarvestAction(bw.vssd_id, gsb_bw_mbps=100.0))
    assert virt.admission.pending_actions == 1
    assert virt.gsb_manager.stats.gsbs_harvested == 0


def test_batch_runs_make_harvestable_first(virt, small_config):
    """Within one batch, supply lands before demand is served."""
    lat, bw = virt.vssd_by_name("lat"), virt.vssd_by_name("bw")
    per = small_config.channel_write_bandwidth_mbps
    # Harvest submitted BEFORE the offer; reordering makes it succeed.
    virt.admission.submit(HarvestAction(bw.vssd_id, per + 1))
    virt.admission.submit(MakeHarvestableAction(lat.vssd_id, per + 1))
    virt.admission.process_batch()
    assert virt.admission.stats.executed_harvest == 1
    assert virt.admission.stats.failed_harvest == 0
    assert bw.harvested_channel_count() == 1


def test_scarce_supply_served_to_least_harvested(virt, small_config):
    virt3 = StorageVirtualizer(config=small_config)
    a = virt3.create_vssd("a", [0])
    b = virt3.create_vssd("b", [1])
    c = virt3.create_vssd("c", [2, 3])
    per = small_config.channel_write_bandwidth_mbps
    # c offers one channel; a and b both want one; a already harvested
    # elsewhere... emulate by giving a a prior harvest from c.
    virt3.admission.submit(MakeHarvestableAction(c.vssd_id, per + 1))
    virt3.admission.process_batch()
    virt3.gsb_manager.harvest(a, per + 1)  # a now holds 1 harvested channel
    virt3.admission.submit(MakeHarvestableAction(c.vssd_id, 2 * per + 1))
    virt3.admission.submit(HarvestAction(a.vssd_id, per + 1))
    virt3.admission.submit(HarvestAction(b.vssd_id, per + 1))
    virt3.admission.process_batch()
    # b (zero harvested) is served before a.
    assert b.harvested_channel_count() >= 1


def test_policy_vetoes_action(virt):
    bw = virt.vssd_by_name("bw")
    virt.admission.add_policy(
        lambda action, vssd: not isinstance(action, HarvestAction)
    )
    virt.admission.submit(HarvestAction(bw.vssd_id, 100.0))
    assert virt.admission.stats.denied == 1
    assert virt.admission.pending_actions == 0


def test_spot_tenant_policy_example(virt, small_config):
    """Cloud providers may bar spot tenants from harvesting (S 3.5)."""
    bw = virt.vssd_by_name("bw")
    bw.tenant_class = "spot"

    def no_spot_harvest(action, vssd):
        return not (isinstance(action, HarvestAction) and vssd.tenant_class == "spot")

    virt.admission.add_policy(no_spot_harvest)
    virt.admission.submit(HarvestAction(bw.vssd_id, 100.0))
    assert virt.admission.stats.denied == 1


def test_premium_tenant_cannot_offer(virt):
    lat = virt.vssd_by_name("lat")
    lat.tenant_class = "premium"

    def no_premium_offer(action, vssd):
        return not (
            isinstance(action, MakeHarvestableAction)
            and vssd.tenant_class == "premium"
        )

    virt.admission.add_policy(no_premium_offer)
    virt.admission.submit(MakeHarvestableAction(lat.vssd_id, 100.0))
    assert virt.admission.stats.denied == 1


def test_periodic_batch_on_simulator_clock(virt, small_config):
    lat, bw = virt.vssd_by_name("lat"), virt.vssd_by_name("bw")
    per = small_config.channel_write_bandwidth_mbps
    virt.admission.start()
    virt.admission.submit(MakeHarvestableAction(lat.vssd_id, per + 1))
    virt.admission.submit(HarvestAction(bw.vssd_id, per + 1))
    # Nothing executes before the 50 ms batch boundary...
    virt.sim.run_until(49_000.0)
    assert virt.gsb_manager.stats.gsbs_harvested == 0
    # ...and everything executes right after it.
    virt.sim.run_until(51_000.0)
    assert virt.gsb_manager.stats.gsbs_harvested == 1


def test_stop_halts_batching(virt):
    virt.admission.start()
    virt.admission.stop()
    bw = virt.vssd_by_name("bw")
    virt.admission.submit(HarvestAction(bw.vssd_id, 100.0))
    virt.sim.run_until_seconds(1.0)
    assert virt.admission.pending_actions == 1


def test_unknown_vssd_rejected(virt):
    with pytest.raises(KeyError):
        virt.admission.submit(HarvestAction(99, 100.0))


def test_action_validation():
    with pytest.raises(ValueError):
        HarvestAction(0, gsb_bw_mbps=0.0)
    with pytest.raises(ValueError):
        MakeHarvestableAction(0, gsb_bw_mbps=-1.0)


def test_batch_processing_is_fast(virt, small_config):
    """S 4.7: a batch of 1,000 actions processes in well under 50 ms of
    wall-clock (the paper reports 0.8 ms on their hardware)."""
    import time

    bw = virt.vssd_by_name("bw")
    for _ in range(1000):
        virt.admission.submit(HarvestAction(bw.vssd_id, 1000.0))
    start = time.perf_counter()
    virt.admission.process_batch()
    elapsed = time.perf_counter() - start
    assert elapsed < 0.5
