"""Tests for the regret search: determinism, fairness, parallel parity."""

import numpy as np
import pytest

from repro.adversarial import (
    adversarial_search,
    evaluate_genome,
    random_genome,
    tiny_protagonist_params,
)

#: One under-trained protagonist shared by the whole module (memoized).
PROTAGONIST = {"kind": "tiny", "seed": 7, "iterations": 1}

#: Micro-search settings: small enough for CI, large enough to evolve.
SEARCH_KWARGS = dict(
    rounds=2,
    population=3,
    seed=11,
    antagonist_iters=1,
    eval_episodes=1,
    envs=2,
    episode_windows=8,
)


@pytest.fixture(scope="module")
def params():
    return tiny_protagonist_params(seed=7, iterations=1)


def test_evaluate_genome_deterministic(params):
    genome = random_genome(np.random.default_rng(3), episode_windows=8)
    a = evaluate_genome(
        genome, params, 55, antagonist_iters=1, eval_episodes=1, envs=2
    )
    b = evaluate_genome(
        genome, params, 55, antagonist_iters=1, eval_episodes=1, envs=2
    )
    assert a == b
    assert a["regret"] == a["antagonist_score"] - a["protagonist_score"]


def test_search_deterministic_serial(params):
    del params  # warm the cache before timing-sensitive fan-out
    first = adversarial_search(PROTAGONIST, **SEARCH_KWARGS)
    second = adversarial_search(PROTAGONIST, **SEARCH_KWARGS)
    assert [c.genome.digest for c in first.candidates] == [
        c.genome.digest for c in second.candidates
    ]
    assert [c.regret for c in first.candidates] == [
        c.regret for c in second.candidates
    ]
    assert first.evaluations == second.evaluations
    assert first.candidates, "search produced no scored candidates"
    assert first.top(1)[0].regret == max(c.regret for c in first.candidates)


def test_search_parallel_matches_serial(params):
    del params
    serial = adversarial_search(PROTAGONIST, **SEARCH_KWARGS)
    parallel = adversarial_search(PROTAGONIST, workers=2, **SEARCH_KWARGS)
    assert [(c.genome.digest, c.regret) for c in serial.candidates] == [
        (c.genome.digest, c.regret) for c in parallel.candidates
    ]


def test_search_candidates_share_warm_protagonist(params):
    """Candidate evaluation must not re-warm the protagonist per
    candidate: the search resolves it once up front, and every cell
    evaluation after that is a cache hit (memo or disk artifact)."""
    del params
    from repro.adversarial.search import PROTAGONIST_STATS

    before = dict(PROTAGONIST_STATS)
    result = adversarial_search(PROTAGONIST, **SEARCH_KWARGS)
    assert result.evaluations > 0
    hits = PROTAGONIST_STATS["hits"] - before["hits"]
    misses = PROTAGONIST_STATS["misses"] - before["misses"]
    # One resolve per candidate evaluation plus the up-front one, all
    # served from the warm cache; nothing re-trains mid-search.
    assert hits > 0
    assert misses == 0


def test_search_rejects_degenerate_settings():
    with pytest.raises(ValueError):
        adversarial_search(PROTAGONIST, rounds=0, population=3, seed=0)
    with pytest.raises(ValueError):
        adversarial_search(PROTAGONIST, rounds=1, population=1, seed=0)


def test_unknown_protagonist_kind_rejected():
    from repro.adversarial import resolve_protagonist

    with pytest.raises(ValueError, match="nope"):
        resolve_protagonist({"kind": "nope"})
