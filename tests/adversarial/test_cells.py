"""Committed regression cells replay byte-identically (tier-1 gate).

Every cell under ``benchmarks/adversarial_cells/`` was discovered by
``repro adversarial`` and committed with its replay digest.  This module
replays each one with the guardrail stack active and asserts:

* the telemetry digest matches the committed value bit for bit,
* the guardrail/watchdog behaviour (fallback count, collapse-streak
  bound) matches the record,
* suspended agents really act through the safe no-op action,
* replaying twice in-process is stable.

A digest mismatch means the analytic envs, the guardrails, or the
policy forward pass changed behaviour under these known-hard scenarios.
If the change is intentional, regenerate the cells:
``python -m repro adversarial --rounds 3 --population 6 --seed 20260808
--top 3 --emit-cells benchmarks/adversarial_cells``.
"""

from pathlib import Path

import pytest

from repro.adversarial import (
    ScenarioGenome,
    load_cell,
    make_cell,
    replay_cell,
    replay_genome,
    tiny_protagonist_params,
    verify_cell,
    write_cell,
)
from repro.adversarial.replay import _safe_action
from repro.config import SSDConfig
from repro.core.actionspace import ActionSpace
from repro.faults.guardrails import GuardrailConfig

CELL_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "adversarial_cells"
CELL_PATHS = sorted(CELL_DIR.glob("adv-*.json"))


def test_cells_are_committed():
    """The repository must carry at least two discovered scenarios."""
    assert len(CELL_PATHS) >= 2, f"no regression cells in {CELL_DIR}"


@pytest.mark.parametrize("path", CELL_PATHS, ids=lambda p: p.stem)
def test_cell_replays_byte_identically(path):
    cell = load_cell(path)
    problems = verify_cell(cell)
    assert not problems, "; ".join(problems)


@pytest.mark.parametrize("path", CELL_PATHS, ids=lambda p: p.stem)
def test_cell_guardrail_contract(path):
    cell = load_cell(path)
    result = replay_cell(cell)
    # The committed scenarios were selected to exercise the watchdog.
    assert result.fallbacks == cell["replay"]["fallbacks"]
    assert result.max_collapse_streak <= GuardrailConfig().collapse_windows
    # Suspended windows act through the safe no-op action only.
    safe = _safe_action(ActionSpace(SSDConfig().channel_write_bandwidth_mbps))
    suspended_rows = [
        line for line in result.telemetry if line.split(",")[6] != "normal"
    ]
    assert len(suspended_rows) == result.suspended_windows
    assert all(int(line.split(",")[3]) == safe for line in suspended_rows)


def test_committed_cells_exercise_the_watchdog():
    """At least one committed scenario must drive a tenant into fallback."""
    assert any(
        load_cell(path)["replay"]["fallbacks"] > 0 for path in CELL_PATHS
    )


def test_replay_twice_is_stable():
    cell = load_cell(CELL_PATHS[0])
    assert replay_cell(cell).digest == replay_cell(cell).digest


def test_cell_write_load_round_trip(tmp_path):
    cell = load_cell(CELL_PATHS[0])
    genome = ScenarioGenome.from_dict(cell["genome"])
    params = tiny_protagonist_params(
        seed=int(cell["replay"]["protagonist"]["seed"]),
        iterations=int(cell["replay"]["protagonist"]["iterations"]),
    )
    replay = replay_genome(
        genome,
        params,
        seed=int(cell["replay"]["seed"]),
        episodes=int(cell["replay"]["episodes"]),
    )
    rebuilt = make_cell(
        genome,
        cell["replay"]["protagonist"],
        replay,
        seed=int(cell["replay"]["seed"]),
        episodes=int(cell["replay"]["episodes"]),
        provenance=cell["provenance"],
    )
    path = write_cell(rebuilt, tmp_path)
    assert load_cell(path) == rebuilt
    assert rebuilt["replay"]["digest"] == cell["replay"]["digest"]


def test_tampered_cell_detected(tmp_path):
    cell = load_cell(CELL_PATHS[0])
    cell["replay"]["digest"] = "0" * 64
    problems = verify_cell(cell)
    assert problems and "digest" in problems[0]
