"""Tests for scenario genomes: serialization, determinism, invariants."""

import json

import numpy as np
import pytest

from repro.adversarial import (
    GENOME_SCHEMA_VERSION,
    ScenarioGenome,
    TenantGene,
    crossover,
    mutate,
    random_genome,
)
from repro.config import SSDConfig
from repro.faults.injector import FaultSpec

NUM_CHANNELS = SSDConfig().num_channels


def _fixed_genome():
    return ScenarioGenome(
        tenants=(
            TenantGene("livemaps", 6, phases=((4.0, 1.0), (3.0, 0.0))),
            TenantGene("batchanalytics", 10),
        ),
        faults=(
            FaultSpec("channel_slowdown", 4.0, 8.0, channel=0, factor=3.0),
            FaultSpec("gc_storm", 6.0, 6.0, vssd="t1"),
        ),
        episode_windows=12,
    )


def test_round_trip_exact():
    genome = _fixed_genome()
    again = ScenarioGenome.from_dict(genome.to_dict())
    assert again == genome
    assert ScenarioGenome.from_json(genome.canonical_json()) == genome


def test_digest_stable_and_canonical():
    genome = _fixed_genome()
    assert genome.digest == _fixed_genome().digest
    # Key order must not matter: the canonical form sorts keys.
    shuffled = json.loads(genome.canonical_json())
    assert ScenarioGenome.from_dict(shuffled).digest == genome.digest
    # Any semantic change moves the digest.
    import dataclasses

    other = dataclasses.replace(genome, episode_windows=13)
    assert other.digest != genome.digest


def test_future_schema_rejected():
    data = _fixed_genome().to_dict()
    data["schema"] = GENOME_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        ScenarioGenome.from_dict(data)


def test_specs_and_fault_profile_build():
    genome = _fixed_genome()
    specs = genome.specs()
    assert [spec.channels for spec in specs] == [6, 10]
    assert [
        (p.duration_s, p.scale) for p in specs[0].workload.phases
    ] == [(4.0, 1.0), (3.0, 0.0)]
    profile = genome.fault_profile()
    assert profile is not None
    assert profile.num_tenants == 2
    # The slowdown on channel 0 hits tenant 0 while active.
    mult, _extra, _gc = profile.effects(0, 5.0)
    assert mult < 1.0
    _m, _e, forced = profile.effects(1, 7.0)
    assert forced


def test_validation_catches_structural_problems():
    import dataclasses

    genome = _fixed_genome()
    genome.validate(NUM_CHANNELS)
    bad_channels = dataclasses.replace(
        genome, tenants=(genome.tenants[0], TenantGene("batchanalytics", 9))
    )
    with pytest.raises(ValueError, match="sum"):
        bad_channels.validate(NUM_CHANNELS)
    bad_fault = dataclasses.replace(
        genome, faults=(FaultSpec("gc_storm", 0.0, 5.0, vssd="t9"),)
    )
    with pytest.raises(ValueError, match="t9"):
        bad_fault.validate(NUM_CHANNELS)
    late_fault = dataclasses.replace(
        genome, faults=(FaultSpec("channel_outage", 1e6, 5.0, channel=0),)
    )
    with pytest.raises(ValueError, match="horizon"):
        late_fault.validate(NUM_CHANNELS)


def test_random_genome_deterministic_and_valid():
    a = random_genome(np.random.default_rng(123))
    b = random_genome(np.random.default_rng(123))
    assert a == b
    for seed in range(20):
        genome = random_genome(np.random.default_rng(seed))
        genome.validate(NUM_CHANNELS)
        assert genome.num_channels == NUM_CHANNELS
        assert all(gene.channels >= 2 for gene in genome.tenants)


def test_mutate_deterministic_and_preserves_invariants():
    rng_seed = 0
    for seed in range(20):
        genome = random_genome(np.random.default_rng(seed))
        child_a = mutate(genome, np.random.default_rng(rng_seed))
        child_b = mutate(genome, np.random.default_rng(rng_seed))
        assert child_a == child_b
        child_a.validate(NUM_CHANNELS)
        assert child_a.num_channels == NUM_CHANNELS


def test_mutation_explores_the_space():
    """Across many draws, mutation actually changes the genome."""
    genome = random_genome(np.random.default_rng(5))
    rng = np.random.default_rng(99)
    changed = sum(mutate(genome, rng) != genome for _ in range(20))
    assert changed >= 15


def test_crossover_deterministic_and_valid():
    a = random_genome(np.random.default_rng(1))
    b = random_genome(np.random.default_rng(2))
    child_x = crossover(a, b, np.random.default_rng(7))
    child_y = crossover(a, b, np.random.default_rng(7))
    assert child_x == child_y
    child_x.validate(NUM_CHANNELS)
    # Tenant structure travels wholesale from one parent.
    assert child_x.tenants in (a.tenants, b.tenants)
