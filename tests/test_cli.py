"""Tests for the command-line interface."""


from repro.cli import build_parser, main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("terasort", "ycsb", "vdi-web"):
        assert name in out


def test_run_command_small_device(capsys):
    code = main([
        "run", "ycsb", "batchanalytics",
        "--policy", "hardware", "--duration", "2", "--warmup", "0.5",
        "--channels", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "hardware" in out
    assert "ycsb" in out
    assert "bw=" in out


def test_compare_command_subset(capsys):
    code = main([
        "compare", "ycsb", "batchanalytics",
        "--policies", "hardware,software",
        "--duration", "2", "--warmup", "0.5", "--channels", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "hardware" in out and "software" in out


def test_classify_command(capsys):
    assert main(["classify", "pagerank"]) == 0
    out = capsys.readouterr().out
    assert "cluster:" in out
    assert "BI" in out


def test_unknown_workload_fails(capsys):
    code = main(["run", "postgres", "--duration", "1"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_duplicate_workload_names_disambiguated(capsys):
    code = main([
        "run", "ycsb", "ycsb",
        "--policy", "hardware", "--duration", "1", "--warmup", "0.2",
        "--channels", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ycsb-1" in out and "ycsb-2" in out


def test_faults_command_smoke(capsys, monkeypatch, tmp_path):
    """The faults command runs the scenario end to end on a tiny device."""
    from repro.config import RLConfig
    from repro.core.actionspace import ActionSpace
    from repro.config import SSDConfig
    from repro.rl import PolicyValueNet
    import repro.harness.pretrained as pretrained

    space = ActionSpace(SSDConfig().channel_write_bandwidth_mbps)
    net = PolicyValueNet(RLConfig().state_dim, space.num_actions, (8, 8))
    monkeypatch.setattr(pretrained, "get_pretrained_net", lambda *a, **k: net)
    monkeypatch.setattr(pretrained, "get_classifier", lambda *a, **k: None)
    csv_path = tmp_path / "events.csv"
    code = main([
        "faults", "ycsb", "batchanalytics",
        "--channels", "4", "--duration", "4", "--warmup", "1",
        "--fault-start", "1.5", "--fault-duration", "1.5", "--factor", "2",
        "--events-csv", str(csv_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleetio+guardrails" in out
    assert "P99 latency by phase" in out
    assert "channel_slowdown:start" in out
    assert "agent_corruption:start" in out
    assert csv_path.exists()
    assert "time_s,source,kind" in csv_path.read_text().splitlines()[0]


def test_parser_covers_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
    )
    names = set(sub.choices)
    assert {
        "run", "compare", "faults", "workloads", "classify", "pretrain",
        "overheads", "sweep", "adversarial", "lint",
    } <= names


def test_adversarial_command_smoke(capsys, tmp_path):
    """A 2-round micro-search completes, reports, and emits cells."""
    json_path = tmp_path / "search.json"
    cell_dir = tmp_path / "cells"
    code = main([
        "adversarial", "--rounds", "2", "--population", "3", "--seed", "0",
        "--tiny-iterations", "1", "--antagonist-iters", "1",
        "--eval-episodes", "1", "--episode-windows", "8", "--top", "1",
        "--emit-cells", str(cell_dir), "--json", str(json_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "evaluations over 2 rounds" in out
    assert "regret" in out
    assert json_path.exists()
    cells = list(cell_dir.glob("adv-*.json"))
    assert len(cells) == 1

    from repro.adversarial import load_cell, verify_cell

    assert verify_cell(load_cell(cells[0])) == []
