"""Tests for trace loading, saving, and replay."""

import numpy as np
import pytest

from repro.config import SSDConfig
from repro.sched import FifoPolicy, IoDispatcher
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.workloads import (
    TraceReplayDriver,
    get_spec,
    load_msr_trace,
    load_trace,
    save_trace,
    synthesize_trace,
    trace_summary,
)

MSR_SAMPLE = """128166372003061629,hm,0,Read,383496192,32768,1331
128166372016382155,hm,0,Write,310378496,16384,4891
128166372026382245,hm,0,Read,383528960,65536,2204
"""


@pytest.fixture
def msr_file(tmp_path):
    path = tmp_path / "sample.csv"
    path.write_text(MSR_SAMPLE)
    return path


def test_load_msr_trace(msr_file):
    trace = load_msr_trace(msr_file, page_size=16384)
    assert len(trace) == 3
    assert trace.times_us[0] == 0.0  # rebased
    assert (np.diff(trace.times_us) >= 0).all()
    assert list(trace.ops) == [1, 0, 1]
    assert list(trace.sizes_pages) == [2, 1, 4]
    assert trace.lpns[0] == 383496192 // 16384


def test_load_msr_respects_max_requests(msr_file):
    trace = load_msr_trace(msr_file, max_requests=2)
    assert len(trace) == 2


def test_load_msr_rejects_garbage(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("not,a,trace\n")
    with pytest.raises(ValueError):
        load_msr_trace(path)


def test_load_msr_rejects_empty(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError):
        load_msr_trace(path)


def test_save_load_roundtrip(tmp_path):
    original = synthesize_trace(get_spec("ycsb"), np.random.default_rng(0), 100)
    path = tmp_path / "trace.csv"
    save_trace(original, path)
    loaded = load_trace(path)
    assert loaded.name == original.name
    assert loaded.page_size == original.page_size
    assert np.allclose(loaded.times_us, original.times_us, atol=1e-3)
    assert (loaded.lpns == original.lpns).all()
    assert (loaded.ops == original.ops).all()


def test_load_trace_rejects_other_csv(tmp_path):
    path = tmp_path / "other.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        load_trace(path)


def test_trace_summary():
    trace = synthesize_trace(get_spec("terasort"), np.random.default_rng(0), 500)
    summary = trace_summary(trace)
    assert summary["requests"] == 500
    assert 0.0 <= summary["read_fraction"] <= 1.0
    assert summary["mean_bw_mbps"] > 0
    assert summary["footprint_pages"] > 0


class TestReplayDriver:
    def _stack(self):
        config = SSDConfig(
            num_channels=2, chips_per_channel=2, blocks_per_chip=8, pages_per_block=16
        )
        sim = Simulator()
        ssd = Ssd(config, sim)
        dispatcher = IoDispatcher(sim, ssd, FifoPolicy())
        ftl = VssdFtl(0, ssd)
        ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
        dispatcher.register_vssd(0, ftl)
        return config, sim, dispatcher

    def test_replays_at_recorded_times(self, msr_file):
        config, sim, dispatcher = self._stack()
        trace = load_msr_trace(msr_file, page_size=config.page_size)
        submitted = []
        dispatcher.add_completion_callback(submitted.append)
        driver = TraceReplayDriver(
            trace, 0, sim, dispatcher.submit, working_set_pages=400
        )
        driver.start()
        sim.run()
        assert driver.submitted == 3
        assert len(submitted) == 3
        # The last record arrives ~2.33 simulated seconds after the first.
        assert sim.now_seconds >= 2.3

    def test_time_scale_compresses(self, msr_file):
        config, sim, dispatcher = self._stack()
        trace = load_msr_trace(msr_file, page_size=config.page_size)
        driver = TraceReplayDriver(
            trace, 0, sim, dispatcher.submit, working_set_pages=400, time_scale=100.0
        )
        driver.start()
        sim.run()
        assert driver.submitted == 3
        assert sim.now_seconds < 1.0

    def test_loop_wraps_around(self, msr_file):
        config, sim, dispatcher = self._stack()
        trace = load_msr_trace(msr_file, page_size=config.page_size)
        driver = TraceReplayDriver(
            trace, 0, sim, dispatcher.submit, working_set_pages=400,
            time_scale=1000.0, loop=True,
        )
        driver.start()
        sim.run_until_seconds(0.2)
        driver.stop()
        assert driver.submitted > 3

    def test_addresses_wrapped_to_working_set(self, msr_file):
        config, sim, dispatcher = self._stack()
        trace = load_msr_trace(msr_file, page_size=config.page_size)
        lpns = []
        original_submit = dispatcher.submit
        driver = TraceReplayDriver(
            trace, 0, sim,
            lambda r: (lpns.append(r.lpn), original_submit(r)),
            working_set_pages=50,
        )
        driver.start()
        sim.run()
        assert all(lpn < 50 for lpn in lpns)

    def test_invalid_params_rejected(self, msr_file):
        trace = load_msr_trace(msr_file)
        with pytest.raises(ValueError):
            TraceReplayDriver(trace, 0, Simulator(), lambda r: None, 100, time_scale=0)
        with pytest.raises(ValueError):
            TraceReplayDriver(trace, 0, Simulator(), lambda r: None, 0)
