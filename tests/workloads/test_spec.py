"""Tests for workload specifications and phases."""

import pytest

from repro.workloads import Phase, UniformPattern, WorkloadSpec


def _spec(**kwargs):
    defaults = dict(
        name="test",
        category="latency",
        mode="open",
        read_ratio=0.5,
        io_sizes_pages=(1, 2),
        io_size_probs=(0.5, 0.5),
        pattern_factory=lambda ws: UniformPattern(ws),
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


def test_mean_io_pages():
    assert _spec().mean_io_pages == 1.5


def test_scale_constant_without_phases():
    assert _spec().scale_at(123.4) == 1.0


def test_scale_follows_phase_cycle():
    spec = _spec(phases=(Phase(2.0, 1.0), Phase(1.0, 0.2)))
    assert spec.scale_at(0.5) == 1.0
    assert spec.scale_at(2.5) == 0.2
    assert spec.scale_at(3.5) == 1.0  # wrapped around
    assert spec.cycle_duration_s == 3.0


def test_invalid_category_rejected():
    with pytest.raises(ValueError):
        _spec(category="gpu")


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        _spec(mode="turbo")


def test_size_probs_must_sum_to_one():
    with pytest.raises(ValueError):
        _spec(io_size_probs=(0.5, 0.4))


def test_size_probs_length_mismatch():
    with pytest.raises(ValueError):
        _spec(io_sizes_pages=(1,), io_size_probs=(0.5, 0.5))


def test_negative_phase_rejected():
    with pytest.raises(ValueError):
        Phase(-1.0, 1.0)
    with pytest.raises(ValueError):
        Phase(1.0, -0.5)


def test_read_ratio_bounds():
    with pytest.raises(ValueError):
        _spec(read_ratio=1.5)


def test_is_latency_sensitive():
    assert _spec(category="latency").is_latency_sensitive
    assert not _spec(category="bandwidth", mode="closed").is_latency_sensitive
