"""Tests for address patterns."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.features import lpa_entropy
from repro.workloads import (
    HotspotPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)

RNG = lambda seed=0: np.random.default_rng(seed)


@pytest.mark.parametrize(
    "pattern_cls,kwargs",
    [
        (UniformPattern, {}),
        (ZipfPattern, {"theta": 1.0}),
        (SequentialPattern, {}),
        (HotspotPattern, {}),
    ],
)
def test_samples_stay_in_bounds(pattern_cls, kwargs):
    pattern = pattern_cls(4096, **kwargs)
    rng = RNG()
    for _ in range(500):
        lpn = pattern.sample(rng, num_pages=16)
        assert 0 <= lpn <= 4096 - 16


def test_uniform_covers_space():
    pattern = UniformPattern(1000)
    rng = RNG()
    samples = [pattern.sample(rng, 1) for _ in range(2000)]
    assert min(samples) < 100
    assert max(samples) > 900


def test_zipf_skews_to_hot_pages():
    pattern = ZipfPattern(100_000, theta=1.5)
    rng = RNG()
    samples = np.array([pattern.sample(rng, 1) for _ in range(3000)])
    values, counts = np.unique(samples // pattern._bucket_pages, return_counts=True)
    # The hottest bucket should absorb far more than a uniform share.
    assert counts.max() / len(samples) > 0.05


def test_zipf_entropy_below_uniform():
    ws = 100_000
    rng = RNG()
    zipf = np.array([ZipfPattern(ws, theta=1.5).sample(rng, 1) for _ in range(3000)])
    uniform = np.array([UniformPattern(ws).sample(rng, 1) for _ in range(3000)])
    assert lpa_entropy(zipf) < lpa_entropy(uniform)


def test_higher_theta_lower_entropy():
    ws = 100_000
    rng = RNG()
    mild = np.array([ZipfPattern(ws, theta=0.6).sample(rng, 1) for _ in range(3000)])
    steep = np.array([ZipfPattern(ws, theta=2.0).sample(rng, 1) for _ in range(3000)])
    assert lpa_entropy(steep) < lpa_entropy(mild)


def test_sequential_walks_forward():
    pattern = SequentialPattern(10_000, reseek_prob=0.0)
    rng = RNG()
    first = pattern.sample(rng, 8)
    second = pattern.sample(rng, 8)
    assert second == first + 8


def test_sequential_wraps_on_exhaustion():
    pattern = SequentialPattern(64, reseek_prob=0.0)
    rng = RNG()
    for _ in range(100):
        lpn = pattern.sample(rng, 8)
        assert 0 <= lpn <= 56


def test_hotspot_concentrates():
    pattern = HotspotPattern(10_000, hot_fraction=0.1, hot_probability=0.9)
    rng = RNG()
    samples = np.array([pattern.sample(rng, 1) for _ in range(2000)])
    hot = (samples < 1000).mean()
    assert hot > 0.8


def test_invalid_working_set_rejected():
    with pytest.raises(ValueError):
        UniformPattern(0)


def test_invalid_zipf_theta_rejected():
    with pytest.raises(ValueError):
        ZipfPattern(100, theta=0.0)


def test_invalid_hotspot_params_rejected():
    with pytest.raises(ValueError):
        HotspotPattern(100, hot_fraction=1.5)
    with pytest.raises(ValueError):
        HotspotPattern(100, hot_probability=0.0)


@settings(max_examples=25, deadline=None)
@given(
    ws=st.integers(min_value=64, max_value=100_000),
    pages=st.integers(min_value=1, max_value=64),
)
def test_bounds_property(ws, pages):
    """Property: every pattern respects [0, ws - pages] for any geometry."""
    rng = RNG(1)
    for pattern in (
        UniformPattern(ws),
        ZipfPattern(ws, theta=1.0),
        SequentialPattern(ws),
        HotspotPattern(ws),
    ):
        for _ in range(10):
            lpn = pattern.sample(rng, min(pages, ws))
            assert 0 <= lpn <= max(ws - min(pages, ws), 0)
