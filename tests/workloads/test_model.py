"""Tests for the workload model and trace synthesis."""

import numpy as np
import pytest

from repro.workloads import WorkloadModel, get_spec, synthesize_trace


@pytest.fixture
def model():
    return WorkloadModel(get_spec("ycsb"), np.random.default_rng(0), 10_000)


def test_read_ratio_respected(model):
    ops = [model.sample_op() for _ in range(2000)]
    read_frac = sum(1 for op in ops if op == "read") / len(ops)
    assert read_frac == pytest.approx(0.95, abs=0.03)


def test_sizes_from_distribution(model):
    sizes = {model.sample_size_pages() for _ in range(100)}
    assert sizes == {1}


def test_interarrival_positive(model):
    for t in (0.0, 1.0, 5.0):
        assert model.interarrival_us(t) > 0


def test_idle_phase_skips_to_next_boundary():
    spec = get_spec("terasort")  # has a 0-scale phase
    model = WorkloadModel(spec, np.random.default_rng(0), 10_000)
    # At 4.6s terasort is in its idle phase (3.0 + 1.5 <= t < 5.5).
    gap = model.interarrival_us(4.6)
    assert gap == pytest.approx((5.5 - 4.6) * 1e6)


def test_synthesize_trace_shape():
    trace = synthesize_trace(get_spec("vdi-web"), np.random.default_rng(1), 500)
    assert len(trace) == 500
    assert (np.diff(trace.times_us) >= 0).all()
    assert set(np.unique(trace.ops)) <= {0, 1}
    assert (trace.sizes_pages > 0).all()


def test_trace_windows():
    trace = synthesize_trace(get_spec("vdi-web"), np.random.default_rng(1), 1000)
    windows = list(trace.iter_windows(300))
    assert len(windows) == 3
    assert all(len(w) == 300 for w in windows)


def test_trace_window_slice():
    trace = synthesize_trace(get_spec("ycsb"), np.random.default_rng(1), 100)
    sub = trace.window(10, 20)
    assert len(sub) == 20
    assert sub.times_us[0] == trace.times_us[10]


def test_traces_reproducible():
    a = synthesize_trace(get_spec("ycsb"), np.random.default_rng(7), 200)
    b = synthesize_trace(get_spec("ycsb"), np.random.default_rng(7), 200)
    assert (a.lpns == b.lpns).all()
    assert (a.times_us == b.times_us).all()


def test_bandwidth_workload_rates_exceed_latency():
    rng = np.random.default_rng(0)
    bw = synthesize_trace(get_spec("pagerank"), rng, 1000)
    lat = synthesize_trace(get_spec("ycsb"), rng, 1000)
    bw_bytes = bw.sizes_pages.sum() * bw.page_size
    lat_bytes = lat.sizes_pages.sum() * lat.page_size
    bw_rate = bw_bytes / (bw.times_us[-1] - bw.times_us[0])
    lat_rate = lat_bytes / (lat.times_us[-1] - lat.times_us[0])
    assert bw_rate > 3 * lat_rate
