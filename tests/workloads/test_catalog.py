"""Tests for the workload catalog."""

import pytest

from repro.workloads import EVALUATION_WORKLOADS, TRAINING_WORKLOADS, WORKLOAD_CATALOG, get_spec
from repro.workloads.catalog import CLUSTER_GROUND_TRUTH


def test_catalog_has_nine_workloads():
    # Section 3.4: "We sample windows from 9 typical cloud workloads."
    assert len(WORKLOAD_CATALOG) == 9


def test_evaluation_set_matches_table4():
    assert set(EVALUATION_WORKLOADS) == {
        "terasort", "mlprep", "pagerank", "vdi-web", "ycsb"
    }


def test_training_set_disjoint_from_evaluation():
    # Section 3.8: pre-training workloads are not used in the evaluation.
    assert not set(TRAINING_WORKLOADS) & set(EVALUATION_WORKLOADS)


def test_lookup_case_insensitive():
    assert get_spec("TeraSort").name == "terasort"


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_spec("cassandra")


def test_categories_match_table4():
    for name in ("terasort", "mlprep", "pagerank"):
        assert get_spec(name).category == "bandwidth"
    for name in ("vdi-web", "ycsb"):
        assert get_spec(name).category == "latency"


def test_ground_truth_covers_catalog():
    assert set(CLUSTER_GROUND_TRUTH) == set(WORKLOAD_CATALOG)
    assert set(CLUSTER_GROUND_TRUTH.values()) == {"BI", "LC-1", "LC-2"}


def test_ycsb_is_its_own_cluster():
    # Figure 6: YCSB-B has its own cluster due to low LPA entropy.
    assert CLUSTER_GROUND_TRUTH["ycsb"] == "LC-2"
    others = [n for n, c in CLUSTER_GROUND_TRUTH.items() if c == "LC-2"]
    assert others == ["ycsb"]


def test_bandwidth_workloads_are_closed_loop():
    for name, spec in WORKLOAD_CATALOG.items():
        if spec.category == "bandwidth":
            assert spec.mode == "closed", name
        else:
            assert spec.mode == "open", name
