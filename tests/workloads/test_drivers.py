"""Tests for the open/closed-loop DES drivers."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.workloads import (
    ClosedLoopDriver,
    OpenLoopDriver,
    WorkloadModel,
    get_spec,
    make_driver,
)


def _driver_for(name, sim, submit):
    spec = get_spec(name)
    model = WorkloadModel(spec, np.random.default_rng(0), 10_000)
    return make_driver(model, 0, sim, submit, page_size=16384)


def test_make_driver_picks_kind():
    sim = Simulator()
    assert isinstance(_driver_for("ycsb", sim, lambda r: None), OpenLoopDriver)
    assert isinstance(_driver_for("terasort", sim, lambda r: None), ClosedLoopDriver)


def test_open_loop_rate_approximates_spec():
    sim = Simulator()
    submitted = []
    driver = _driver_for("ycsb", sim, submitted.append)
    driver.start()
    sim.run_until_seconds(3.0)  # ycsb phase 1 @ 3000 IOPS
    rate = len(submitted) / 3.0
    assert rate == pytest.approx(3000, rel=0.15)


def test_open_loop_stops(sim=None):
    sim = Simulator()
    submitted = []
    driver = _driver_for("ycsb", sim, submitted.append)
    driver.start()
    sim.run_until_seconds(0.5)
    driver.stop()
    count = len(submitted)
    sim.run_until_seconds(1.5)
    assert len(submitted) == count


def test_closed_loop_maintains_outstanding():
    sim = Simulator()
    inflight = []
    driver = _driver_for("terasort", sim, inflight.append)
    driver.start()
    assert driver.in_flight == get_spec("terasort").outstanding
    # Completing one request triggers a replacement submission.
    request = inflight[0]
    request.dispatch_time = sim.now
    request.complete_time = sim.now
    driver.on_complete(request)
    assert driver.in_flight == get_spec("terasort").outstanding
    assert driver.submitted == get_spec("terasort").outstanding + 1


def test_closed_loop_idle_phase_stops_submissions():
    sim = Simulator()
    inflight = []
    driver = _driver_for("terasort", sim, inflight.append)
    driver.start()
    # Jump into the idle phase (scale 0 between 4.5s and 5.5s).
    sim.run_until_seconds(4.6)
    assert driver.target_outstanding() == 0
    # Complete everything: nothing new should be submitted while idle.
    before = driver.submitted
    for request in list(inflight):
        if request.complete_time is None:
            request.dispatch_time = request.complete_time = sim.now
            driver.on_complete(request)
    assert driver.submitted == before


def test_closed_loop_phase_tick_resumes():
    sim = Simulator()
    submitted = []
    driver = _driver_for("terasort", sim, submitted.append)
    driver.start()
    # Drain all in-flight requests during the idle phase (4.5s-5.5s):
    # nothing new is submitted because the target is zero.
    sim.run_until_seconds(4.6)
    for request in list(submitted):
        if request.complete_time is None:
            request.dispatch_time = request.complete_time = sim.now
            driver.on_complete(request)
    count_at_idle = driver.submitted
    assert driver.in_flight == 0
    # Crossing the phase boundary at 5.5s must top the loop back up.
    sim.run_until_seconds(6.0)
    assert driver.submitted > count_at_idle


def test_driver_request_fields():
    sim = Simulator()
    submitted = []
    driver = _driver_for("ycsb", sim, submitted.append)
    driver.start()
    sim.run_until_seconds(0.1)
    request = submitted[0]
    assert request.vssd_id == 0
    assert request.op in ("read", "write")
    assert request.num_pages >= 1
