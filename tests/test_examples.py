"""Sanity checks on the example scripts (compile + structure).

The examples are exercised for real in documentation runs; here we only
guarantee they stay syntactically valid, importable-at-the-top, and keep
the `main()` convention — cheap guards against bit-rot.
"""

import ast
import pathlib

import pytest

EXAMPLES = sorted(pathlib.Path(__file__).parent.parent.joinpath("examples").glob("*.py"))


def test_all_seven_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "harvesting_lifecycle.py",
        "workload_clustering.py",
        "policy_comparison.py",
        "trace_replay.py",
        "zns_harvesting.py",
        "provider_controls.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    compile(path.read_text(), str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    has_main = any(
        isinstance(node, ast.FunctionDef) and node.name == "main"
        for node in tree.body
    )
    assert has_main, f"{path.name} lacks a main()"
    assert "__main__" in path.read_text(), f"{path.name} lacks the main guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples must not reach into private modules (underscore names)."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            assert not any(part.startswith("_") for part in node.module.split(".")), (
                path.name, node.module
            )
