"""Tests for the Adam optimizer."""

import numpy as np
import pytest

from repro.rl import Adam


def test_minimizes_quadratic():
    params = {"x": np.array([5.0])}
    adam = Adam(learning_rate=0.1)
    for _ in range(300):
        grads = {"x": 2 * params["x"]}
        adam.step(params, grads, max_grad_norm=None)
    assert abs(params["x"][0]) < 0.05


def test_gradient_clipping():
    params = {"x": np.array([0.0])}
    adam = Adam(learning_rate=1.0)
    adam.step(params, {"x": np.array([1e9])}, max_grad_norm=0.5)
    # Clipped: the first Adam step magnitude is ~lr regardless, but the
    # internal moments must reflect the clipped gradient.
    assert abs(adam._m["x"][0]) <= 0.5 * 0.1 + 1e-9


def test_steps_counter():
    adam = Adam()
    params = {"x": np.zeros(2)}
    adam.step(params, {"x": np.ones(2)})
    adam.step(params, {"x": np.ones(2)})
    assert adam.steps == 2


def test_reset():
    adam = Adam()
    params = {"x": np.zeros(2)}
    adam.step(params, {"x": np.ones(2)})
    adam.reset()
    assert adam.steps == 0
    assert adam._m == {}


def test_invalid_lr_rejected():
    with pytest.raises(ValueError):
        Adam(learning_rate=0.0)


def test_bias_correction_first_step():
    """With bias correction the first step is ~lr in the gradient
    direction, not lr * (1 - beta1)."""
    params = {"x": np.array([0.0])}
    adam = Adam(learning_rate=0.01)
    adam.step(params, {"x": np.array([1.0])}, max_grad_norm=None)
    assert params["x"][0] == pytest.approx(-0.01, rel=1e-3)
