"""Tests for the policy/value network, including a numeric gradient check."""

import numpy as np
import pytest

from repro.rl import PolicyValueNet
from repro.rl.policy import log_softmax


@pytest.fixture
def net():
    return PolicyValueNet(6, 4, (8, 8), rng=np.random.default_rng(0))


def test_forward_shapes(net):
    x = np.random.default_rng(1).standard_normal((5, 6))
    logits, values, cache = net.forward(x)
    assert logits.shape == (5, 4)
    assert values.shape == (5,)
    assert len(cache) == 3  # input + two hidden activations


def test_forward_single_state(net):
    logits, values, _ = net.forward(np.zeros(6))
    assert logits.shape == (1, 4)


def test_parameter_count_matches_architecture(net):
    expected = (6 * 8 + 8) + (8 * 8 + 8) + (8 * 4 + 4) + (8 * 1 + 1)
    assert net.num_parameters() == expected


def test_paper_architecture_size():
    """Table 3: hidden layers [50, 50]; the paper reports ~9K parameters
    and a 2.2 MB serialized model; ours is the same order of magnitude."""
    from repro.config import RLConfig
    from repro.core.actionspace import ActionSpace

    config = RLConfig()
    space = ActionSpace(60.0)
    net = PolicyValueNet(config.state_dim, space.num_actions, config.hidden_layer_sizes)
    assert 3000 < net.num_parameters() < 20_000


def test_clone_is_independent(net):
    clone = net.clone()
    clone.params["W0"][0, 0] += 1.0
    assert net.params["W0"][0, 0] != clone.params["W0"][0, 0]


def test_flat_params_roundtrip(net):
    flat = net.get_flat_params()
    other = PolicyValueNet(6, 4, (8, 8), rng=np.random.default_rng(9))
    other.set_flat_params(flat)
    x = np.random.default_rng(2).standard_normal((3, 6))
    a, _, _ = net.forward(x)
    b, _, _ = other.forward(x)
    assert np.allclose(a, b)


def test_flat_params_wrong_size_rejected(net):
    with pytest.raises(ValueError):
        net.set_flat_params(np.zeros(3))


def test_save_load_roundtrip(net, tmp_path):
    path = str(tmp_path / "model.npz")
    net.save(path)
    loaded = PolicyValueNet.load(path)
    x = np.random.default_rng(3).standard_normal((2, 6))
    a, av, _ = net.forward(x)
    b, bv, _ = loaded.forward(x)
    assert np.allclose(a, b)
    assert np.allclose(av, bv)


def test_backward_matches_numeric_gradient(net):
    """Full-network gradient check against central differences."""
    rng = np.random.default_rng(4)
    x = rng.standard_normal((4, 6))
    dlogits = rng.standard_normal((4, 4)) * 0.1
    dvalues = rng.standard_normal(4) * 0.1

    def scalar_loss():
        logits, values, _ = net.forward(x)
        return float((logits * dlogits).sum() + (values * dvalues).sum())

    _logits, _values, cache = net.forward(x)
    grads = net.backward(cache, dlogits, dvalues)
    eps = 1e-6
    for key in ("W0", "W1", "Wp", "Wv", "b0", "bp", "bv"):
        param = net.params[key]
        flat_index = (0,) * param.ndim
        original = param[flat_index]
        param[flat_index] = original + eps
        plus = scalar_loss()
        param[flat_index] = original - eps
        minus = scalar_loss()
        param[flat_index] = original
        numeric = (plus - minus) / (2 * eps)
        assert grads[key][flat_index] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        PolicyValueNet(0, 4)
    with pytest.raises(ValueError):
        PolicyValueNet(4, 0)


def test_log_softmax_normalized():
    logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
    logp = log_softmax(logits)
    assert np.allclose(np.exp(logp).sum(axis=1), 1.0)
