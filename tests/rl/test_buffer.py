"""Tests for the rollout buffer and GAE."""

import numpy as np
import pytest

from repro.rl import RolloutBuffer


def _fill(buffer, rewards, values, bootstrap=0.0):
    for r, v in zip(rewards, values):
        buffer.add(np.zeros(2), 0, -0.5, r, v)
    buffer.finish_path(bootstrap)


def test_gae_matches_hand_computation():
    gamma, lam = 0.9, 0.8
    buffer = RolloutBuffer(discount=gamma, gae_lambda=lam)
    rewards = [1.0, 0.0, 2.0]
    values = [0.5, 0.4, 0.3]
    _fill(buffer, rewards, values, bootstrap=0.2)
    deltas = [
        1.0 + gamma * 0.4 - 0.5,
        0.0 + gamma * 0.3 - 0.4,
        2.0 + gamma * 0.2 - 0.3,
    ]
    adv2 = deltas[2]
    adv1 = deltas[1] + gamma * lam * adv2
    adv0 = deltas[0] + gamma * lam * adv1
    assert buffer.advantages == pytest.approx([adv0, adv1, adv2])
    assert buffer.returns == pytest.approx(
        [adv0 + 0.5, adv1 + 0.4, adv2 + 0.3]
    )


def test_multiple_paths():
    buffer = RolloutBuffer(discount=0.9)
    _fill(buffer, [1.0], [0.0])
    _fill(buffer, [2.0], [0.0])
    assert len(buffer) == 2
    assert len(buffer.advantages) == 2


def test_get_requires_finished_path():
    buffer = RolloutBuffer()
    buffer.add(np.zeros(2), 0, 0.0, 1.0, 0.0)
    with pytest.raises(RuntimeError):
        buffer.get()


def test_get_normalizes_advantages():
    buffer = RolloutBuffer(discount=0.9)
    _fill(buffer, [1.0, -1.0, 3.0, 0.5], [0.0, 0.0, 0.0, 0.0])
    data = buffer.get(normalize_advantages=True)
    assert data["advantages"].mean() == pytest.approx(0.0, abs=1e-9)
    assert data["advantages"].std() == pytest.approx(1.0, rel=1e-6)


def test_get_raw_advantages():
    buffer = RolloutBuffer(discount=0.9)
    _fill(buffer, [1.0, 2.0], [0.0, 0.0])
    data = buffer.get(normalize_advantages=False)
    assert data["advantages"][1] == pytest.approx(2.0)


def test_clear():
    buffer = RolloutBuffer()
    _fill(buffer, [1.0], [0.0])
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.open_path_length == 0


def test_open_path_length():
    buffer = RolloutBuffer()
    buffer.add(np.zeros(2), 0, 0.0, 1.0, 0.0)
    assert buffer.open_path_length == 1
    buffer.finish_path()
    assert buffer.open_path_length == 0


def test_invalid_discount_rejected():
    with pytest.raises(ValueError):
        RolloutBuffer(discount=0.0)
    with pytest.raises(ValueError):
        RolloutBuffer(gae_lambda=1.5)


def test_add_batch_bit_identical_to_repeated_add():
    rng = np.random.default_rng(11)
    states = rng.standard_normal((17, 6))
    actions = rng.integers(0, 5, 17).tolist()
    log_probs = rng.standard_normal(17).tolist()
    rewards = rng.standard_normal(17).tolist()
    values = rng.standard_normal(17).tolist()
    one = RolloutBuffer(discount=0.9, gae_lambda=0.8)
    for row in range(17):
        one.add(states[row], actions[row], log_probs[row], rewards[row], values[row])
    bulk = RolloutBuffer(discount=0.9, gae_lambda=0.8)
    bulk.add_batch(states, actions, log_probs, rewards, values)
    one.finish_path(0.25)
    bulk.finish_path(0.25)
    a, b = one.get(normalize_advantages=False), bulk.get(normalize_advantages=False)
    for key in a:
        assert (a[key] == b[key]).all(), key


def test_add_batch_extends_open_segment():
    buffer = RolloutBuffer(discount=0.9)
    buffer.add(np.zeros(2), 0, -0.5, 1.0, 0.0)
    buffer.add_batch(np.ones((2, 2)), [1, 2], [-0.1, -0.2], [2.0, 3.0], [0.5, 0.6])
    assert buffer.open_path_length == 3
    buffer.finish_path()
    assert len(buffer) == 3
    assert buffer._rewards[:3].tolist() == [1.0, 2.0, 3.0]


def test_add_batch_empty_noop():
    buffer = RolloutBuffer()
    buffer.add_batch(np.empty((0, 4)), [], [], [], [])
    assert len(buffer) == 0
    assert buffer.open_path_length == 0


def test_bootstrap_affects_last_advantage():
    buffer_a = RolloutBuffer(discount=0.9)
    _fill(buffer_a, [1.0], [0.0], bootstrap=0.0)
    buffer_b = RolloutBuffer(discount=0.9)
    _fill(buffer_b, [1.0], [0.0], bootstrap=10.0)
    assert buffer_b.advantages[0] > buffer_a.advantages[0]
