"""Tests for the PPO trainer, including an end-to-end learning check."""

import numpy as np
import pytest

from repro.config import RLConfig
from repro.rl import CategoricalPolicy, PolicyValueNet, PpoTrainer, RolloutBuffer
from repro.rl.policy import log_softmax


@pytest.fixture
def trainer():
    net = PolicyValueNet(3, 4, (8, 8), rng=np.random.default_rng(0))
    config = RLConfig(learning_rate=1e-3, batch_size=8)
    return PpoTrainer(net, config, np.random.default_rng(1))


def _loss_value(net, config, states, actions, old_logp, advantages, returns):
    logits, values, _ = net.forward(states)
    logp_all = log_softmax(logits)
    logp = logp_all[np.arange(len(actions)), actions]
    ratio = np.exp(logp - old_logp)
    clipped = np.clip(ratio, 1 - config.clip_epsilon, 1 + config.clip_epsilon)
    surrogate = np.minimum(ratio * advantages, clipped * advantages)
    probs = np.exp(logp_all)
    entropy = -(probs * logp_all).sum(axis=1)
    return float(
        -surrogate.mean()
        + config.value_coef * ((values - returns) ** 2).mean()
        - config.entropy_coef * entropy.mean()
    )


def test_loss_gradients_match_numeric(trainer):
    """The analytic PPO gradient equals the numeric gradient of the loss."""
    rng = np.random.default_rng(2)
    net, config = trainer.net, trainer.config
    states = rng.standard_normal((6, 3))
    actions = rng.integers(0, 4, 6)
    old_logp = np.log(np.full(6, 0.25))
    advantages = rng.standard_normal(6)
    returns = rng.standard_normal(6)

    logits, values, cache = net.forward(states)
    dlogits, dvalues, _ = trainer._loss_gradients(
        logits, values, actions, old_logp, advantages, returns
    )
    grads = net.backward(cache, dlogits, dvalues)
    eps = 1e-6
    for key in ("W0", "Wp", "Wv", "b1"):
        param = net.params[key]
        index = (0,) * param.ndim
        original = param[index]
        param[index] = original + eps
        plus = _loss_value(net, config, states, actions, old_logp, advantages, returns)
        param[index] = original - eps
        minus = _loss_value(net, config, states, actions, old_logp, advantages, returns)
        param[index] = original
        numeric = (plus - minus) / (2 * eps)
        assert grads[key][index] == pytest.approx(numeric, rel=1e-3, abs=1e-8)


def test_update_returns_stats(trainer):
    buffer = RolloutBuffer(discount=0.9)
    rng = np.random.default_rng(3)
    for _ in range(32):
        buffer.add(rng.standard_normal(3), int(rng.integers(4)), -1.4, rng.random(), 0.0)
    buffer.finish_path()
    stats = trainer.update(buffer)
    assert np.isfinite(stats.policy_loss)
    assert stats.value_loss >= 0
    assert stats.entropy > 0


def test_update_empty_buffer_rejected(trainer):
    with pytest.raises(ValueError):
        trainer.update(RolloutBuffer())


def test_clip_fraction_reported(trainer):
    buffer = RolloutBuffer(discount=0.9)
    rng = np.random.default_rng(3)
    # Deliberately wrong old_logp values force clipping.
    for _ in range(32):
        buffer.add(rng.standard_normal(3), int(rng.integers(4)), -8.0, 1.0, 0.0)
    buffer.finish_path()
    stats = trainer.update(buffer)
    assert 0.0 <= stats.clip_fraction <= 1.0


def test_learns_contextual_bandit():
    """PPO must solve a trivial two-state bandit to near-optimality."""
    net = PolicyValueNet(2, 2, (16,), rng=np.random.default_rng(0))
    policy = CategoricalPolicy(net)
    config = RLConfig(learning_rate=3e-3, batch_size=64)
    trainer = PpoTrainer(net, config, np.random.default_rng(1))
    rng = np.random.default_rng(2)
    for _iteration in range(50):
        buffer = RolloutBuffer(discount=0.05)
        for _ in range(128):
            state = np.eye(2)[rng.integers(0, 2)]
            action, logp, value = policy.act(state, rng)
            reward = 1.0 if action == int(state[1]) else 0.0
            buffer.add(state, action, logp, reward, value)
            buffer.finish_path(0.0)
        trainer.update(buffer)
    correct = sum(
        policy.act_deterministic(np.eye(2)[s]) == s for s in (0, 1)
    )
    assert correct == 2


def test_value_function_learns():
    """The value head regresses state values under fixed returns."""
    net = PolicyValueNet(2, 2, (16,), rng=np.random.default_rng(0))
    config = RLConfig(learning_rate=3e-3, batch_size=32)
    trainer = PpoTrainer(net, config, np.random.default_rng(1))
    rng = np.random.default_rng(2)
    for _ in range(60):
        buffer = RolloutBuffer(discount=0.05)
        for _ in range(64):
            state = np.eye(2)[rng.integers(0, 2)]
            reward = 2.0 if state[1] else -1.0
            buffer.add(state, 0, np.log(0.5), reward, 0.0)
            buffer.finish_path(0.0)
        trainer.update(buffer)
    policy = CategoricalPolicy(net)
    assert policy.value(np.eye(2)[1]) == pytest.approx(2.0, abs=0.5)
    assert policy.value(np.eye(2)[0]) == pytest.approx(-1.0, abs=0.5)
