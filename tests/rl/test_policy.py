"""Tests for the categorical policy."""

import numpy as np
import pytest

from repro.rl import CategoricalPolicy, PolicyValueNet
from repro.rl.policy import softmax


@pytest.fixture
def policy():
    net = PolicyValueNet(4, 3, (8,), rng=np.random.default_rng(0))
    return CategoricalPolicy(net)


def test_act_returns_valid_tuple(policy):
    rng = np.random.default_rng(1)
    action, logp, value = policy.act(np.zeros(4), rng)
    assert 0 <= action < 3
    assert logp <= 0.0
    assert isinstance(value, float)


def test_act_logp_consistent_with_distribution(policy):
    rng = np.random.default_rng(1)
    state = np.ones(4)
    probs = policy.action_distribution(state)
    action, logp, _ = policy.act(state, rng)
    assert logp == pytest.approx(np.log(probs[action]), rel=1e-9)


def test_sampling_follows_distribution(policy):
    rng = np.random.default_rng(2)
    state = np.ones(4) * 0.5
    probs = policy.action_distribution(state)
    counts = np.zeros(3)
    for _ in range(3000):
        action, _, _ = policy.act(state, rng)
        counts[action] += 1
    assert np.allclose(counts / 3000, probs, atol=0.04)


def test_act_deterministic_is_argmax(policy):
    state = np.ones(4)
    probs = policy.action_distribution(state)
    assert policy.act_deterministic(state) == int(np.argmax(probs))


def test_act_greedy_returns_logp_and_value(policy):
    state = np.ones(4)
    action, logp, value = policy.act_greedy(state)
    assert action == policy.act_deterministic(state)
    probs = policy.action_distribution(state)
    assert logp == pytest.approx(np.log(probs[action]), rel=1e-9)
    assert value == pytest.approx(policy.value(state))


def test_distribution_sums_to_one(policy):
    probs = policy.action_distribution(np.random.default_rng(3).standard_normal(4))
    assert probs.sum() == pytest.approx(1.0)
    assert (probs >= 0).all()


def test_softmax_stability():
    probs = softmax(np.array([[1e4, 1e4 + 1.0]]))
    assert np.isfinite(probs).all()
