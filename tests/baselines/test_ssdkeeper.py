"""Tests for the SSDKeeper baseline."""

import numpy as np
import pytest

from repro.baselines import MlpRegressor, SsdKeeperAllocator
from repro.config import SSDConfig


def test_regressor_fits_linear_function():
    rng = np.random.default_rng(0)
    x = rng.normal(0, 1, (200, 3))
    y = 2.0 * x[:, 0] - x[:, 1] + 0.5
    model = MlpRegressor(3, hidden=16, seed=0)
    mse = model.fit(x, y, epochs=300, learning_rate=1e-2)
    assert mse < 0.05


def test_regressor_predict_shape():
    model = MlpRegressor(2, hidden=4)
    assert model.predict(np.zeros((5, 2))).shape == (5,)
    assert model.predict(np.zeros(2)).shape == (1,)


@pytest.fixture(scope="module")
def allocator():
    allocator = SsdKeeperAllocator(SSDConfig(), seed=0)
    allocator.train(windows_per_workload=3, requests_per_window=1500)
    return allocator


def test_training_converges(allocator):
    assert allocator.trained
    assert allocator.training_mse < 2.0


def test_predict_before_train_raises():
    with pytest.raises(RuntimeError):
        SsdKeeperAllocator().predict_demand(np.zeros(4))


def test_partition_sums_to_total(allocator):
    counts = allocator.partition(["vdi-web", "terasort"], total_channels=16)
    assert sum(counts) == 16
    assert all(c >= 1 for c in counts)


def test_partition_favors_bandwidth_demand(allocator):
    counts = allocator.partition(["ycsb", "pagerank"], total_channels=16)
    ycsb, pagerank = counts
    assert pagerank > ycsb


def test_partition_many_tenants(allocator):
    names = ["vdi-web", "ycsb", "terasort", "pagerank"]
    counts = allocator.partition(names, total_channels=16)
    assert sum(counts) == 16
    assert all(c >= 1 for c in counts)


def test_partition_static_and_deterministic(allocator):
    a = allocator.partition(["vdi-web", "terasort"], total_channels=16)
    b = allocator.partition(["vdi-web", "terasort"], total_channels=16)
    assert a == b
