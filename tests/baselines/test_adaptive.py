"""Tests for the Adaptive (eZNS-style) baseline manager."""

import pytest

from repro.core.monitor import VssdMonitor
from repro.baselines import AdaptiveManager
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def world(small_config):
    virt = StorageVirtualizer(config=small_config)
    manager = AdaptiveManager(virt, window_s=0.1)
    vssds = {}
    for name, channels in (("busy", [0, 1]), ("idle", [2, 3])):
        vssd = virt.create_vssd(name, channels)
        monitor = VssdMonitor(vssd)
        virt.dispatcher.add_completion_callback(monitor.on_complete)
        manager.register_vssd(vssd, monitor)
        vssds[name] = vssd
    return virt, manager, vssds


def _drive(virt, vssd, n):
    for i in range(n):
        virt.dispatcher.submit(
            IoRequest(vssd.vssd_id, "write", i, 2, virt.config.page_size, virt.sim.now)
        )


def test_busy_tenant_harvests_idle_capacity(world):
    virt, manager, vssds = world
    manager.start()
    busy = vssds["busy"]
    for _round in range(6):
        _drive(virt, busy, 60)
        virt.sim.run_until_seconds(virt.sim.now_seconds + 0.1)
    virt.sim.run(max_events=100_000)
    assert busy.harvested_channel_count() >= 1
    assert manager.reallocations > 0


def test_idle_tenant_offers(world):
    virt, manager, vssds = world
    manager.start()
    _drive(virt, vssds["busy"], 100)
    virt.sim.run_until_seconds(0.5)
    idle = vssds["idle"]
    assert idle.offered_channel_count() >= 1


def test_no_traffic_no_thrash(world):
    virt, manager, vssds = world
    manager.start()
    virt.sim.run_until_seconds(0.5)
    # With zero bandwidth everywhere, targets are equal shares: no
    # reallocation should be needed beyond possibly the first window.
    assert vssds["busy"].harvested_channel_count() == 0


def test_demand_floor_prevents_starvation(world):
    virt, manager, vssds = world
    manager.start()
    # Both tenants active: the lighter one must keep >= its demand floor.
    for _round in range(5):
        _drive(virt, vssds["busy"], 80)
        _drive(virt, vssds["idle"], 10)
        virt.sim.run_until_seconds(virt.sim.now_seconds + 0.1)
    idle = vssds["idle"]
    lent_in_use = sum(g.n_chls for g in idle.harvestable_gsbs if g.in_use)
    assert idle.num_channels - lent_in_use >= 1


def test_stop(world):
    virt, manager, vssds = world
    manager.start()
    manager.stop()
    virt.sim.run_until_seconds(0.5)
    assert manager.reallocations == 0
