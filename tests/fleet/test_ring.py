"""Telemetry ring: framing, overflow, retry reset, and torn-tail drops."""

import struct

import pytest

from repro.fleet.arena import leaked_segments
from repro.fleet.ring import (
    _FRAME,
    _HEADER,
    KIND_RESULTS,
    KIND_WINDOW_ROWS,
    TelemetryRing,
)


@pytest.fixture
def ring():
    ring = TelemetryRing.create(capacity=1024)
    yield ring
    ring.close()


def test_append_drain_roundtrip_preserves_order(ring):
    records = [
        (KIND_WINDOW_ROWS, 0, 0, b"w0-slot0"),
        (KIND_WINDOW_ROWS, 0, 1, b"w0-slot1"),
        (KIND_RESULTS, 0, 0, b"r0"),
        (KIND_WINDOW_ROWS, 3, 0, b""),
        (KIND_RESULTS, 3, 0, b"r3"),
    ]
    for record in records:
        assert ring.append(*record)
    assert ring.records == len(records)
    assert not ring.overflowed
    assert ring.drain() == records


def test_overflow_sets_flag_and_rejects_later_appends(ring):
    big = b"x" * 900
    assert ring.append(KIND_WINDOW_ROWS, 0, 0, big)
    assert not ring.append(KIND_WINDOW_ROWS, 1, 0, big)
    assert ring.overflowed
    # Once overflowed, even a record that would fit is refused: the
    # worker has switched the shard's tail to the pipe fallback and a
    # late ring record would be merged out of order.
    assert not ring.append(KIND_RESULTS, 2, 0, b"tiny")
    assert ring.drain() == [(KIND_WINDOW_ROWS, 0, 0, big)]


def test_reset_clears_cursors_for_retry(ring):
    ring.append(KIND_WINDOW_ROWS, 0, 0, b"x" * 900)
    ring.append(KIND_WINDOW_ROWS, 1, 0, b"x" * 900)  # overflows
    assert ring.overflowed
    ring.reset()
    assert ring.used == 0 and ring.records == 0 and not ring.overflowed
    assert ring.append(KIND_RESULTS, 0, 0, b"fresh")
    assert ring.drain() == [(KIND_RESULTS, 0, 0, b"fresh")]


def test_drain_drops_torn_trailing_record(ring):
    """A worker killed mid-append leaves a frame whose payload the used
    cursor does not fully cover; drain must drop it, not misparse."""
    assert ring.append(KIND_RESULTS, 0, 0, b"good")
    used, records = ring.used, ring.records
    _FRAME.pack_into(ring._shm.buf, _HEADER + used, KIND_RESULTS, 1, 0, 999)
    struct.pack_into(
        "<qq", ring._shm.buf, 16, used + _FRAME.size + 4, records + 1
    )
    assert ring.drain() == [(KIND_RESULTS, 0, 0, b"good")]


def test_attach_missing_or_foreign_segment_returns_none(ring):
    assert TelemetryRing.attach("repro_ring_gone_0") is None
    # A live segment that is not a ring (bad magic) is refused too.
    ring._shm.buf[:8] = b"NOTRING!"
    assert TelemetryRing.attach(ring.name) is None


def test_attach_sees_producer_records(ring):
    writer = TelemetryRing.attach(ring.name)
    assert writer is not None
    writer.append(KIND_RESULTS, 5, 0, b"via-attach")
    writer.close()
    assert ring.drain() == [(KIND_RESULTS, 5, 0, b"via-attach")]


def test_owner_close_unlinks_segment():
    ring = TelemetryRing.create(capacity=256)
    name = ring.name
    ring.close()
    ring.close()  # idempotent
    assert all(name not in segment for segment in leaked_segments())
