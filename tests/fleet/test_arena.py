"""Shared-memory arena: roundtrip fidelity and defensive attachment.

The arena may only exist because it provably changes nothing: a snapshot
decoded from a segment must equal the captured one (minus the
seed-dependent stream states), and *any* defect — missing segment, bad
magic, truncated or garbage meta, a key mismatch — must degrade to the
regular snapshot path, never crash a worker or leak a segment.
"""

import dataclasses
import json
import struct

import numpy as np
import pytest

from repro.config import SSDConfig
from repro.fleet.arena import (
    ArenaManifest,
    SharedArena,
    attach_arena,
    create_segment,
    install_manifest,
    leaked_segments,
    new_segment_name,
    tracked_unlink,
)
from repro.harness import snapshots
from repro.harness.experiment import Experiment
from repro.parallel.matrix import plans_for

FAST = SSDConfig(
    num_channels=4,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=32,
    min_superblock_blocks=4,
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch, tmp_path):
    snapshots.clear_memory_cache()
    snapshots._ARENA_CACHE.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield
    snapshots.clear_memory_cache()
    snapshots._ARENA_CACHE.clear()


def _probe(seed=7):
    exp = Experiment(
        plans_for(("ycsb", "terasort")), "hardware", ssd_config=FAST, seed=seed
    )
    exp.build()
    return exp


@pytest.fixture(scope="module")
def captured():
    """One built probe's snapshot + its seed-independent columns key."""
    exp = _probe()
    snap = snapshots.capture_experiment(exp)
    assert snap is not None
    key = snapshots.warm_columns_key(exp, exp._plan_allocation())
    return snap, key


def test_columns_key_is_seed_independent():
    a, b = _probe(seed=3), _probe(seed=9)
    alloc_a, alloc_b = a._plan_allocation(), b._plan_allocation()
    assert snapshots.warm_cache_key(a, alloc_a) != snapshots.warm_cache_key(
        b, alloc_b
    )
    assert snapshots.warm_columns_key(a, alloc_a) == snapshots.warm_columns_key(
        b, alloc_b
    )


def test_arena_roundtrip_matches_capture(captured):
    snap, key = captured
    arena = SharedArena(key, snap)
    try:
        assert arena.manifest.columns_key == key
        assert arena.manifest.payload_nbytes > 0
        decoded = attach_arena(arena.manifest)
        assert decoded is not None
        # Stream states are seed-dependent and must not ride in a
        # cross-seed segment.
        assert "streams" not in decoded
        assert decoded["engine"] == snap["engine"]
        assert decoded["arrays"] == snap["arrays"]
        assert decoded["ftls"] == snap["ftls"]
        store, ref = decoded["store"], snap["store"]
        assert np.array_equal(store["page_lpns"], ref["page_lpns"])
        assert np.array_equal(store["erase_count"], ref["erase_count"])
        # Zero-copy views must be read-only: restore copies *out*.
        assert not store["page_lpns"].flags.writeable
        for name in ("state", "owner", "writer", "harvested", "write_ptr",
                     "valid_count"):
            assert store[name] == ref[name], name
    finally:
        arena.unlink()
    assert leaked_segments() == []


def test_install_manifest_registers_with_snapshot_layer(captured):
    snap, key = captured
    arena = SharedArena(key, snap)
    try:
        assert not snapshots.arena_available()
        assert install_manifest(arena.manifest)
        assert snapshots.arena_available()
        assert snapshots.arena_get(key) is not None
        assert snapshots.arena_get("0" * 12) is None
    finally:
        arena.unlink()


def test_unlink_is_idempotent(captured):
    snap, key = captured
    arena = SharedArena(key, snap)
    arena.unlink()
    arena.unlink()
    assert leaked_segments() == []


# ---------------------------------------------------------------------
# Corrupt-segment degradation: attach returns None, never raises
# ---------------------------------------------------------------------
def _manifest(name, key="feedface4242", size=4096):
    return ArenaManifest(
        name=name, size=size, columns_key=key, payload_nbytes=size
    )


def test_attach_missing_segment_degrades():
    assert attach_arena(_manifest("repro_arena_gone_0")) is None


@pytest.mark.parametrize(
    "corruption",
    ["bad_magic", "huge_meta_len", "zero_meta_len", "garbage_meta_json"],
)
def test_attach_corrupt_segment_degrades(corruption):
    """Every corruption mode degrades to None + no registration."""
    shm = create_segment(new_segment_name("arena"), 4096)
    try:
        if corruption == "bad_magic":
            shm.buf[:8] = b"NOTMAGIC"
        else:
            shm.buf[:8] = b"RARENA01"
            if corruption == "huge_meta_len":
                struct.pack_into("<Q", shm.buf, 8, 1 << 40)
            elif corruption == "zero_meta_len":
                struct.pack_into("<Q", shm.buf, 8, 0)
            elif corruption == "garbage_meta_json":
                blob = b"{definitely not json"
                struct.pack_into("<Q", shm.buf, 8, len(blob))
                shm.buf[16 : 16 + len(blob)] = blob
        manifest = _manifest(shm.name)
        assert attach_arena(manifest) is None
        assert not install_manifest(manifest)
        assert not snapshots.arena_available()
    finally:
        shm.close()
        tracked_unlink(shm)
    assert leaked_segments() == []


def test_attach_wrong_columns_key_degrades(captured):
    """A stale manifest (key from another config) must not serve data."""
    snap, key = captured
    arena = SharedArena(key, snap)
    try:
        stale = dataclasses.replace(arena.manifest, columns_key="0" * 12)
        assert attach_arena(stale) is None
        assert not install_manifest(stale)
    finally:
        arena.unlink()


def test_attach_out_of_bounds_layout_degrades():
    """A layout table pointing past the segment end is rejected."""
    blob = json.dumps(
        {
            "meta": {"version": 1, "plan_names": []},
            "layout": {
                "page_lpns": {
                    "dtype": "<i4",
                    "shape": [1 << 20],
                    "offset": 0,
                }
            },
            "columns_key": "feedface4242",
        }
    ).encode("utf-8")
    shm = create_segment(new_segment_name("arena"), 4096)
    try:
        shm.buf[:8] = b"RARENA01"
        struct.pack_into("<Q", shm.buf, 8, len(blob))
        shm.buf[16 : 16 + len(blob)] = blob
        assert attach_arena(_manifest(shm.name)) is None
    finally:
        shm.close()
        tracked_unlink(shm)
