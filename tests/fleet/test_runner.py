"""Fleet runner: sharded telemetry byte-equality, degradation, healing.

The fleet contract in one line: however the devices are executed —
serial loop, sharded pool, arena on or off, rings overflowing into the
pipe fallback, a shard worker crashing and being retried — the merged
telemetry is byte-identical and ``/dev/shm`` ends empty.
"""

import dataclasses
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.fleet import (
    DeviceSpec,
    FleetShardRunner,
    build_fleet,
    leaked_segments,
    run_fleet_serial,
)
from repro.fleet.shard import shard_device_count
from repro.parallel.worker import RUNNERS

SPECS = build_fleet(
    4,
    workloads=("ycsb",),
    policy="hardware",
    base_seed=11,
    duration_s=0.5,
    measure_after_s=0.1,
)


@pytest.fixture(scope="module")
def serial():
    result = run_fleet_serial(SPECS)
    assert result.ok, result.errors
    return result


def test_build_fleet_is_homogeneous_with_per_device_seeds():
    assert [spec.index for spec in SPECS] == [0, 1, 2, 3]
    assert [spec.seed for spec in SPECS] == [11, 12, 13, 14]
    assert {spec.workloads for spec in SPECS} == {("ycsb",)}
    assert SPECS[2].device_id == "dev002/ycsb/hardware/s13"


def test_shard_device_count_round_robin():
    assert shard_device_count(SPECS, 3) == [2, 1, 1]
    assert shard_device_count(SPECS, 1) == [4]
    assert shard_device_count(SPECS, 8) == [1, 1, 1, 1, 0, 0, 0, 0]


def test_sharded_fleet_matches_serial_arena_off(serial):
    fleet = FleetShardRunner(shards=2, arena=False).run(SPECS)
    assert fleet.ok, fleet.errors
    assert fleet.shards == 2
    assert fleet.telemetry == serial.telemetry
    assert fleet.arena == {"mode": "off", "published": False,
                           "attached_shards": 0}
    # Ring-recovered telemetry is credited as pipe bytes saved.
    assert fleet.profile["counters"]["ipc.bytes_saved"] > 0
    assert leaked_segments() == []


def test_sharded_fleet_matches_serial_arena_on(serial):
    fleet = FleetShardRunner(shards=2, arena=True).run(SPECS)
    assert fleet.ok, fleet.errors
    assert fleet.telemetry == serial.telemetry
    assert fleet.arena["published"]
    assert fleet.arena["attached_shards"] == 2
    assert fleet.profile["counters"]["arena.attach"] >= 1
    assert leaked_segments() == []
    # Per-shard profiler namespaces surface in the merged profile.
    assert any(
        name.startswith("fleet.shard0.") for name in fleet.profile["timers"]
    )
    assert any(
        name.startswith("fleet.shard1.") for name in fleet.profile["timers"]
    )


def test_tiny_ring_overflow_falls_back_byte_identically(serial):
    """A ring too small for even one record pushes every device onto the
    pipe fallback — throughput degrades, the bytes do not."""
    fleet = FleetShardRunner(shards=2, arena=False, ring_capacity=64).run(SPECS)
    assert fleet.ok, fleet.errors
    assert fleet.telemetry == serial.telemetry
    for outcome in fleet.outcomes:
        assert outcome.result["overflow_from"] is not None
        assert outcome.result["fallback"]
    assert leaked_segments() == []


def test_empty_fleet_is_ok():
    result = FleetShardRunner(shards=1).run([])
    assert result.ok
    assert result.telemetry == b""
    assert leaked_segments() == []


def _flaky_fleet_shard(cell):
    """Crash the whole worker once per shard, then run the real thing."""
    from repro.fleet.shard import run_fleet_shard

    marker = Path(os.environ["REPRO_TEST_FLAKY_DIR"]) / f"shard{cell.shard_index}"
    if not marker.exists():
        marker.write_text("crashed-once\n")
        os._exit(13)
    return run_fleet_shard(cell)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the flaky runner is injected via fork inheritance",
)
def test_crashed_shard_retried_byte_identical_and_leak_free(
    serial, tmp_path, monkeypatch
):
    """Every shard worker dies once mid-run; the retry reuses the same
    ring (reset first) and the merged bytes still equal serial."""
    monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
    monkeypatch.setitem(RUNNERS, "fleet_shard", _flaky_fleet_shard)
    fleet = FleetShardRunner(shards=2, arena=True, max_attempts=2).run(SPECS)
    assert fleet.ok, fleet.errors
    assert fleet.telemetry == serial.telemetry
    assert all(outcome.attempts == 2 for outcome in fleet.outcomes)
    assert leaked_segments() == []


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the crash runner is injected via fork inheritance",
)
def test_crashing_every_attempt_reports_errors_without_leaks(monkeypatch):
    def _always_crash(cell):
        os._exit(13)

    monkeypatch.setitem(RUNNERS, "fleet_shard", _always_crash)
    fleet = FleetShardRunner(shards=2, arena=True, max_attempts=2).run(SPECS)
    assert not fleet.ok
    assert fleet.errors
    assert fleet.device_telemetry == {}
    assert leaked_segments() == []


def test_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        FleetShardRunner(shards=0)


def test_fleet_respects_device_spec_immutability():
    spec = SPECS[0]
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 99
    assert isinstance(spec, DeviceSpec)
