"""Table 3 parameter assertions and config validation."""

import pytest

from repro.config import (
    ADMISSION_BATCH_INTERVAL_S,
    CLUSTER_ALPHAS,
    FINETUNE_SLO_THRESHOLD,
    RLConfig,
    SSDConfig,
)


class TestTable3Defaults:
    """The defaults mirror Table 3 of the paper."""

    def test_sdf_parameters(self):
        config = SSDConfig()
        assert config.num_channels == 16
        assert config.chips_per_channel == 4
        assert config.page_size == 16 * 1024
        assert config.max_queue_depth == 16
        assert config.overprovision_ratio == 0.20

    def test_rl_parameters(self):
        config = RLConfig()
        assert config.decision_interval_s == 2.0
        assert config.beta == 0.6
        assert config.learning_rate == 1e-4
        assert config.discount_factor == 0.9
        assert config.hidden_layer_sizes == (50, 50)
        assert config.batch_size == 32

    def test_state_space_dimensions(self):
        # Section 3.3.1: 11 states per window, 3 windows concatenated.
        config = RLConfig()
        assert config.states_per_window == 11
        assert config.history_windows == 3
        assert config.state_dim == 33

    def test_channel_bandwidth_calibration(self):
        # Section 3.6.2: ~64 MB/s maximum bandwidth per channel.
        config = SSDConfig()
        assert 50 <= config.channel_write_bandwidth_mbps <= 75
        assert 50 <= config.channel_read_bandwidth_mbps <= 80

    def test_gc_and_gsb_policy(self):
        config = SSDConfig()
        assert config.gc_free_block_threshold == 0.20  # Section 4.1
        assert config.gsb_min_free_fraction == 0.25    # Section 3.6.2

    def test_admission_batching_interval(self):
        assert ADMISSION_BATCH_INTERVAL_S == 0.05  # Section 3.5: 50 ms

    def test_cluster_alphas(self):
        # Section 3.8: LC-1 2.5e-2, LC-2 5e-3, BI 0.
        assert CLUSTER_ALPHAS == {"LC-1": 2.5e-2, "LC-2": 5e-3, "BI": 0.0}

    def test_finetune_threshold(self):
        assert FINETUNE_SLO_THRESHOLD == 0.05  # Section 3.4: 5%

    def test_slo_violation_guarantee(self):
        assert RLConfig().slo_violation_guarantee == 0.01  # Section 3.3.3


class TestValidation:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(num_channels=0)
        with pytest.raises(ValueError):
            SSDConfig(pages_per_block=-1)
        with pytest.raises(ValueError):
            SSDConfig(overprovision_ratio=1.0)

    def test_invalid_rl_params_rejected(self):
        with pytest.raises(ValueError):
            RLConfig(beta=1.5)
        with pytest.raises(ValueError):
            RLConfig(discount_factor=0.0)
        with pytest.raises(ValueError):
            RLConfig(decision_interval_s=0.0)

    def test_capacity_derivations(self):
        config = SSDConfig(
            num_channels=2, chips_per_channel=2, blocks_per_chip=4,
            pages_per_block=8, page_size=1024,
        )
        assert config.block_size == 8192
        assert config.blocks_per_channel == 8
        assert config.total_blocks == 16
        assert config.capacity_bytes == 16 * 8192
        assert config.usable_bytes == int(16 * 8192 * 0.8)
