"""Tests for the workload-type classifier."""

import numpy as np
import pytest

from repro.clustering import WorkloadTypeClassifier, fit_default_classifier
from repro.clustering.features import trace_feature_windows
from repro.workloads import get_spec, synthesize_trace


@pytest.fixture(scope="module")
def classifier():
    return fit_default_classifier(seed=0, windows_per_workload=4, requests_per_window=2000)


def test_high_test_accuracy(classifier):
    # The paper reports 98.4%; our synthetic workloads separate cleanly.
    assert classifier.report.test_accuracy >= 0.9


def test_three_clusters_labeled(classifier):
    assert set(classifier.report.cluster_labels.values()) == {"BI", "LC-1", "LC-2"}


def test_fresh_traces_classified_correctly(classifier):
    rng = np.random.default_rng(99)
    for name, expected in (
        ("terasort", "BI"),
        ("vdi-web", "LC-1"),
        ("ycsb", "LC-2"),
    ):
        trace = synthesize_trace(get_spec(name), rng, 2000)
        row = trace_feature_windows(trace, 2000)[0]
        assert classifier.predict_label(row[None, :]) == expected


def test_outlier_returns_none(classifier):
    # A feature vector far outside anything trained on.
    weird = np.array([[1e6, 1e6, 0.5, 1e5]])
    assert classifier.predict_label(weird) is None


def test_mismatched_lengths_rejected():
    clf = WorkloadTypeClassifier()
    with pytest.raises(ValueError):
        clf.fit(np.zeros((4, 4)), ["a", "b"])


def test_report_populated(classifier):
    report = classifier.report
    assert report.train_samples > report.test_samples > 0
    assert set(report.per_workload_accuracy) <= {
        "terasort", "mlprep", "pagerank", "vdi-web", "ycsb",
        "livemaps", "tpce", "searchengine", "batchanalytics",
    }
