"""Tests for I/O feature extraction."""

import numpy as np
import pytest

from repro.clustering import extract_features, trace_feature_windows
from repro.clustering.features import lpa_entropy
from repro.workloads import get_spec, synthesize_trace


def test_entropy_of_constant_address_is_zero():
    assert lpa_entropy(np.zeros(1000, dtype=int)) == 0.0


def test_entropy_of_uniform_is_high():
    rng = np.random.default_rng(0)
    lpns = rng.integers(0, 1_000_000, 5000)
    assert lpa_entropy(lpns) > 0.9


def test_entropy_empty_is_zero():
    assert lpa_entropy(np.array([], dtype=int)) == 0.0


def test_entropy_bounded():
    rng = np.random.default_rng(0)
    for _ in range(5):
        lpns = rng.integers(0, rng.integers(2, 10_000), 500)
        assert 0.0 <= lpa_entropy(lpns) <= 1.0


def test_extract_features_bandwidths():
    # Two requests over 1 second: one read of 4 pages, one write of 2.
    times = np.array([0.0, 1_000_000.0])
    ops = np.array([1, 0])
    lpns = np.array([0, 100])
    sizes = np.array([4, 2])
    page = 1024 * 1024  # 1 MiB pages for easy numbers
    feats = extract_features(times, ops, lpns, sizes, page)
    assert feats[0] == pytest.approx(4.0)   # read MB/s
    assert feats[1] == pytest.approx(2.0)   # write MB/s
    assert feats[3] == pytest.approx(3.0 * 1024)  # mean size in KB


def test_extract_features_empty():
    empty = np.array([])
    feats = extract_features(empty, empty, empty, empty, 16384)
    assert (feats == 0).all()


def test_trace_feature_windows_shape():
    trace = synthesize_trace(get_spec("ycsb"), np.random.default_rng(0), 3000)
    rows = trace_feature_windows(trace, requests_per_window=1000)
    assert rows.shape == (3, 4)


def test_trace_too_short_raises():
    trace = synthesize_trace(get_spec("ycsb"), np.random.default_rng(0), 100)
    with pytest.raises(ValueError):
        trace_feature_windows(trace, requests_per_window=1000)


def test_bandwidth_workload_features_dominate():
    rng = np.random.default_rng(0)
    bw = trace_feature_windows(
        synthesize_trace(get_spec("terasort"), rng, 2000), 1000
    ).mean(axis=0)
    lat = trace_feature_windows(
        synthesize_trace(get_spec("vdi-web"), rng, 2000), 1000
    ).mean(axis=0)
    assert bw[0] + bw[1] > lat[0] + lat[1]  # total bandwidth
    assert bw[3] > lat[3]                   # request size


def test_ycsb_entropy_below_vdi():
    rng = np.random.default_rng(0)
    ycsb = trace_feature_windows(
        synthesize_trace(get_spec("ycsb"), rng, 2000), 1000
    ).mean(axis=0)
    vdi = trace_feature_windows(
        synthesize_trace(get_spec("vdi-web"), rng, 2000), 1000
    ).mean(axis=0)
    assert ycsb[2] < vdi[2]
