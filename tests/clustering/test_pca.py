"""Tests for PCA."""

import numpy as np
import pytest

from repro.clustering import Pca


def test_transform_shape():
    rng = np.random.default_rng(0)
    x = rng.normal(0, 1, (50, 4))
    projected = Pca(n_components=2).fit_transform(x)
    assert projected.shape == (50, 2)


def test_first_component_captures_dominant_direction():
    rng = np.random.default_rng(0)
    t = rng.normal(0, 5, 200)
    x = np.column_stack([t, 0.5 * t + rng.normal(0, 0.1, 200)])
    pca = Pca(n_components=2, standardize=False).fit(x)
    assert pca.explained_variance_ratio_[0] > 0.95


def test_explained_variance_sums_to_at_most_one():
    rng = np.random.default_rng(1)
    x = rng.normal(0, 1, (60, 5))
    pca = Pca(n_components=3).fit(x)
    assert pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9


def test_components_are_orthonormal():
    rng = np.random.default_rng(2)
    x = rng.normal(0, 1, (60, 4))
    pca = Pca(n_components=2).fit(x)
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(2), atol=1e-9)


def test_transform_before_fit_raises():
    with pytest.raises(RuntimeError):
        Pca().transform(np.zeros((3, 2)))


def test_too_many_components_rejected():
    with pytest.raises(ValueError):
        Pca(n_components=5).fit(np.zeros((10, 3)))


def test_projection_centered():
    rng = np.random.default_rng(3)
    x = rng.normal(10, 2, (100, 3))
    projected = Pca(n_components=2).fit_transform(x)
    assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)


def test_constant_feature_handled():
    rng = np.random.default_rng(4)
    x = np.column_stack([rng.normal(0, 1, 50), np.full(50, 7.0)])
    projected = Pca(n_components=1).fit_transform(x)
    assert np.isfinite(projected).all()
