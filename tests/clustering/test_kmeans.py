"""Tests for k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import KMeans


def _three_blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]])
    points = np.concatenate(
        [center + rng.normal(0, 0.5, (n, 2)) for center in centers]
    )
    labels = np.repeat([0, 1, 2], n)
    return points, labels


def test_recovers_separated_blobs():
    points, truth = _three_blobs()
    km = KMeans(n_clusters=3, seed=1).fit(points)
    predicted = km.predict(points)
    # Clusters must be pure (up to label permutation).
    for k in range(3):
        members = truth[predicted == k]
        assert (members == members[0]).all()


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        KMeans(2).predict(np.zeros((3, 2)))


def test_fewer_samples_than_clusters_rejected():
    with pytest.raises(ValueError):
        KMeans(5).fit(np.zeros((3, 2)))


def test_inertia_decreases_with_more_clusters():
    points, _ = _three_blobs()
    one = KMeans(1, seed=0).fit(points).inertia_
    three = KMeans(3, seed=0).fit(points).inertia_
    assert three < one


def test_transform_distance_shape():
    points, _ = _three_blobs()
    km = KMeans(3, seed=0).fit(points)
    distances = km.transform_distance(points[:5])
    assert distances.shape == (5, 3)
    assert (distances >= 0).all()


def test_standardization_handles_scale_differences():
    rng = np.random.default_rng(0)
    # Feature 1 is 1000x larger; without standardization it dominates.
    a = np.column_stack([rng.normal(0, 1, 50), rng.normal(0, 1000, 50)])
    b = np.column_stack([rng.normal(5, 1, 50), rng.normal(0, 1000, 50)])
    km = KMeans(2, seed=0, standardize=True).fit(np.concatenate([a, b]))
    predicted = km.predict(np.concatenate([a, b]))
    purity_a = max((predicted[:50] == 0).mean(), (predicted[:50] == 1).mean())
    purity_b = max((predicted[50:] == 0).mean(), (predicted[50:] == 1).mean())
    assert purity_a > 0.9 and purity_b > 0.9
    # Without standardization the noisy large-scale feature dominates and
    # the split is near-random.
    km_raw = KMeans(2, seed=0, standardize=False).fit(np.concatenate([a, b]))
    raw_pred = km_raw.predict(np.concatenate([a, b]))
    raw_purity = max((raw_pred[:50] == 0).mean(), (raw_pred[:50] == 1).mean())
    assert purity_a >= raw_purity


def test_deterministic_given_seed():
    points, _ = _three_blobs()
    a = KMeans(3, seed=7).fit(points).centers
    b = KMeans(3, seed=7).fit(points).centers
    assert np.allclose(a, b)


def test_n_init_picks_best_restart():
    points, _ = _three_blobs()
    single = KMeans(3, seed=3, n_init=1).fit(points).inertia_
    multi = KMeans(3, seed=3, n_init=10).fit(points).inertia_
    assert multi <= single + 1e-9


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        KMeans(0)
    with pytest.raises(ValueError):
        KMeans(2, n_init=0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=100))
def test_every_point_assigned_to_nearest_center(k, seed):
    """Property: predict() assigns each point to its closest center."""
    rng = np.random.default_rng(seed)
    points = rng.normal(0, 3, (40, 3))
    km = KMeans(k, seed=seed, standardize=False).fit(points)
    predicted = km.predict(points)
    distances = km.transform_distance(points)
    assert (predicted == distances.argmin(axis=1)).all()
