"""Tests for alpha fine-tuning by binary search."""

import pytest

from repro.clustering import tune_alpha


def _monotone_eval(threshold_alpha):
    """Violations decrease with alpha; bandwidth decreases with alpha."""

    def evaluate(alpha):
        violations = max(0.0, 0.2 * (1.0 - alpha / max(threshold_alpha, 1e-9)))
        bandwidth = 1.0 - 0.5 * alpha
        return violations, bandwidth

    return evaluate


def test_finds_smallest_feasible_alpha():
    # Violations hit 5% exactly at alpha where 0.2*(1 - a/0.4) = 0.05
    # -> a = 0.3.
    alpha = tune_alpha(_monotone_eval(0.4), slo_threshold=0.05, iterations=12)
    assert alpha == pytest.approx(0.3, abs=0.01)


def test_low_alpha_already_feasible():
    evaluate = lambda alpha: (0.0, 1.0)
    assert tune_alpha(evaluate) == 0.0


def test_infeasible_returns_high():
    evaluate = lambda alpha: (0.5, 1.0)
    assert tune_alpha(evaluate) == 1.0


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        tune_alpha(lambda a: (0.0, 1.0), low=0.5, high=0.5)


def test_cluster_alpha_ordering():
    """The paper's fine-tuned alphas: BI < LC-2 < LC-1 (bandwidth jobs
    tolerate violations; latency services do not)."""
    from repro.config import CLUSTER_ALPHAS

    assert CLUSTER_ALPHAS["BI"] < CLUSTER_ALPHAS["LC-2"] < CLUSTER_ALPHAS["LC-1"]


def test_fast_env_evaluator_is_monotone():
    """More alpha -> fewer violations, less harvested bandwidth."""
    from repro.clustering import make_fast_env_evaluator

    evaluate = make_fast_env_evaluator("livemaps", windows=15)
    vio_low, bw_low = evaluate(0.0)
    vio_high, bw_high = evaluate(1.0)
    assert vio_high <= vio_low
    assert bw_high <= bw_low + 0.05


def test_tune_alpha_on_fast_env():
    """End-to-end: binary search lands on a feasible, small alpha."""
    from repro.clustering import make_fast_env_evaluator

    evaluate = make_fast_env_evaluator("livemaps", windows=15)
    alpha = tune_alpha(evaluate, iterations=5)
    vio, _bw = evaluate(alpha)
    assert vio <= 0.05 + 0.02
    assert alpha < 0.5


def test_search_monotonically_converges():
    calls = []

    def evaluate(alpha):
        calls.append(alpha)
        return (0.2 if alpha < 0.5 else 0.0), 1.0

    alpha = tune_alpha(evaluate, iterations=10)
    assert 0.5 <= alpha <= 0.55
