"""Shared fixtures: small geometries so tests run in milliseconds."""

from __future__ import annotations

import pytest

from repro.config import RLConfig, SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.hbt import HarvestedBlockTable


@pytest.fixture
def small_config() -> SSDConfig:
    """A small SSD: 4 channels x 2 chips x 8 blocks x 16 pages."""
    return SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=8,
        pages_per_block=16,
        min_superblock_blocks=2,
    )


@pytest.fixture
def tiny_rl_config() -> RLConfig:
    return RLConfig(decision_interval_s=0.1, batch_size=8)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def ssd(small_config, sim) -> Ssd:
    return Ssd(small_config, sim)


@pytest.fixture
def hbt() -> HarvestedBlockTable:
    return HarvestedBlockTable()


@pytest.fixture
def ftl(ssd, hbt) -> VssdFtl:
    """An FTL owning channels 0-1 of the small SSD."""
    ftl = VssdFtl(0, ssd, hbt=hbt)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    return ftl
