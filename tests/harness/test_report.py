"""Tests for CSV export and ASCII charts."""

import numpy as np
import pytest

from repro.harness.metrics import ExperimentResult, VssdResult
from repro.harness.report import (
    bar_chart,
    comparison_table,
    load_results_csv,
    p99_chart,
    results_to_csv,
    utilization_chart,
)


def _result(policy, util=0.3, p99=2000.0):
    result = ExperimentResult(
        policy=policy, duration_s=10.0, measure_start_s=0.0,
        total_bandwidth_mbps=1000.0,
    )
    result.util_series = np.array([util * 1000.0])
    result.vssds["lat"] = VssdResult(
        name="lat", workload="ycsb", category="latency", completed=100,
        mean_bw_mbps=40.0, mean_latency_us=500.0, p95_latency_us=900.0,
        p99_latency_us=p99, p999_latency_us=3000.0, slo_latency_us=1000.0,
        slo_violation_frac=0.02, write_amplification=1.05, gc_runs=3,
    )
    result.vssds["bw"] = VssdResult(
        name="bw", workload="terasort", category="bandwidth", completed=200,
        mean_bw_mbps=250.0, mean_latency_us=20_000.0, p95_latency_us=50_000.0,
        p99_latency_us=80_000.0, p999_latency_us=120_000.0, slo_latency_us=None,
        slo_violation_frac=0.0, write_amplification=1.3, gc_runs=40,
    )
    return result


@pytest.fixture
def results():
    return {"hardware": _result("hardware", 0.25, 1000.0),
            "fleetio": _result("fleetio", 0.32, 1300.0)}


def test_csv_roundtrip(results, tmp_path):
    path = tmp_path / "results.csv"
    rows = results_to_csv(results, path)
    assert rows == 4
    loaded = load_results_csv(path)
    assert len(loaded) == 4
    first = loaded[0]
    assert first["policy"] == "hardware"
    assert first["vssd"] in ("lat", "bw")
    assert float(first["avg_utilization"]) == pytest.approx(0.25)


def test_csv_handles_missing_slo(results, tmp_path):
    path = tmp_path / "results.csv"
    results_to_csv(results, path)
    rows = load_results_csv(path)
    bw_rows = [r for r in rows if r["vssd"] == "bw"]
    assert all(r["slo_latency_us"] == "" for r in bw_rows)


def test_bar_chart_scales_and_annotates():
    chart = bar_chart({"a": 10.0, "b": 5.0}, title="t", width=10, baseline="a")
    lines = chart.splitlines()
    assert lines[0] == "t"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert "(0.50x)" in lines[2]


def test_bar_chart_empty():
    assert bar_chart({}, title="t") == "t"


def test_utilization_chart(results):
    chart = utilization_chart(results, baseline="hardware")
    assert "hardware" in chart and "fleetio" in chart
    assert "%" in chart


def test_p99_chart(results):
    chart = p99_chart(results, "lat")
    assert "ms" in chart
    assert "1.00ms" in chart or "1.0" in chart


def test_comparison_table(results):
    table = comparison_table(results)
    assert "policy" in table.splitlines()[0]
    assert len(table.splitlines()) == 3


def test_zero_request_cell_propagates_none_percentiles(tmp_path):
    """A vSSD that completed zero requests has no percentiles, and every
    aggregation layer must carry that as empty/n-a — never a 0.0 that
    would read as a perfect latency."""
    result = ExperimentResult(
        policy="fleetio", duration_s=10.0, measure_start_s=0.0,
        total_bandwidth_mbps=1000.0,
    )
    result.vssds["idle"] = VssdResult(
        name="idle", workload="ycsb", category="latency", completed=0,
        mean_bw_mbps=0.0, mean_latency_us=0.0, p95_latency_us=None,
        p99_latency_us=None, p999_latency_us=None, slo_latency_us=None,
        slo_violation_frac=0.0, write_amplification=1.0, gc_runs=0,
    )
    results = {"fleetio": result}
    # CSV: percentile cells are empty strings, and they survive a
    # write/load round trip as empty (not "None", not "0.0").
    path = tmp_path / "results.csv"
    results_to_csv(results, path)
    (row,) = load_results_csv(path)
    assert row["completed"] == "0"
    assert row["p95_latency_us"] == ""
    assert row["p99_latency_us"] == ""
    assert row["p999_latency_us"] == ""
    # Category aggregation: no values means no mean, not 0.0.
    assert result.mean_of_p99s("latency") is None
    # Charts/tables: the unmeasured vSSD is excluded or shown as n/a.
    chart = p99_chart(results, "idle")
    assert "0.00ms" not in chart
    table = comparison_table(results)
    assert "n/a" in table
    assert result.vssds["idle"].summary_row().count("n/a") == 1
