"""Tests for experiment metrics."""

import numpy as np
import pytest

from repro.harness.metrics import ExperimentResult, VssdResult, bandwidth_series


def _vssd_result(name="v", category="latency", bw=100.0, p99=1000.0):
    return VssdResult(
        name=name,
        workload=name,
        category=category,
        completed=1000,
        mean_bw_mbps=bw,
        mean_latency_us=500.0,
        p95_latency_us=900.0,
        p99_latency_us=p99,
        p999_latency_us=2000.0,
        slo_latency_us=1000.0,
        slo_violation_frac=0.01,
        write_amplification=1.1,
        gc_runs=5,
    )


def test_bandwidth_series_bins():
    times = [0.5, 0.6, 1.5, 2.5]
    sizes = [1 << 20] * 4
    series = bandwidth_series(times, sizes, start_s=0.0, end_s=3.0, interval_s=1.0)
    assert series.shape == (3,)
    assert series[0] == pytest.approx(2.0)
    assert series[1] == pytest.approx(1.0)


def test_bandwidth_series_ignores_outside_window():
    series = bandwidth_series([5.0], [1 << 20], start_s=0.0, end_s=3.0)
    assert series.sum() == 0.0


def test_bandwidth_series_empty_window():
    assert len(bandwidth_series([], [], 1.0, 1.0)) == 0


def test_utilization_metrics():
    result = ExperimentResult(
        policy="x", duration_s=10.0, measure_start_s=0.0,
        total_bandwidth_mbps=1000.0,
    )
    result.util_series = np.array([100.0, 200.0, 300.0, 400.0])
    assert result.avg_utilization == pytest.approx(0.25)
    assert result.p95_utilization == pytest.approx(0.385, abs=0.01)


def test_utilization_zero_when_empty():
    result = ExperimentResult(policy="x", duration_s=1.0, measure_start_s=0.0)
    assert result.avg_utilization == 0.0
    assert result.p95_utilization == 0.0


def test_by_category_and_means():
    result = ExperimentResult(
        policy="x", duration_s=1.0, measure_start_s=0.0, total_bandwidth_mbps=1.0
    )
    result.vssds["lat"] = _vssd_result("lat", "latency", bw=50.0, p99=800.0)
    result.vssds["bw1"] = _vssd_result("bw1", "bandwidth", bw=200.0)
    result.vssds["bw2"] = _vssd_result("bw2", "bandwidth", bw=300.0)
    assert len(result.by_category("bandwidth")) == 2
    assert result.mean_bw_of("bandwidth") == pytest.approx(250.0)
    assert result.mean_of_p99s("latency") == pytest.approx(800.0)
    assert result.mean_bw_of("gpu") == 0.0


def test_mean_of_p99s_empty_category_is_none():
    """An empty series has no percentile — None, not a silent 0.0."""
    result = ExperimentResult(
        policy="x", duration_s=1.0, measure_start_s=0.0, total_bandwidth_mbps=1.0
    )
    assert result.mean_of_p99s("latency") is None
    result.vssds["lat"] = _vssd_result("lat", "latency", p99=None)
    assert result.mean_of_p99s("latency") is None


def test_mean_p99_of_alias_deprecated():
    result = ExperimentResult(
        policy="x", duration_s=1.0, measure_start_s=0.0, total_bandwidth_mbps=1.0
    )
    result.vssds["lat"] = _vssd_result("lat", "latency", p99=800.0)
    with pytest.warns(DeprecationWarning):
        assert result.mean_p99_of("latency") == pytest.approx(800.0)


def test_summary_row_format():
    row = _vssd_result().summary_row()
    assert "bw=" in row and "p99=" in row and "slo_vio=" in row


def test_summary_row_handles_missing_percentiles():
    row = _vssd_result(p99=None).summary_row()
    assert "n/a" in row
