"""Tests for the cached pre-trained artifacts."""

import numpy as np

from repro.harness import get_classifier, get_pretrained_net


def test_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.harness.pretrained as module

    module._net_cache.clear()
    net = get_pretrained_net(iterations=2, seed=1)
    assert (tmp_path / "pretrained_i2_s1.npz").exists()
    module._net_cache.clear()
    again = get_pretrained_net(iterations=2, seed=1)
    assert np.allclose(net.get_flat_params(), again.get_flat_params())


def test_memo_cache_returns_same_object(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = get_pretrained_net(iterations=2, seed=2)
    b = get_pretrained_net(iterations=2, seed=2)
    assert a is b


def test_classifier_memoized():
    assert get_classifier(seed=0) is get_classifier(seed=0)
