"""Tests for the cached pre-trained artifacts."""

import numpy as np

from repro.harness import get_classifier, get_pretrained_net
from repro.harness.pretrained import (
    classifier_cache_path,
    pretrained_cache_path,
)


def test_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.harness.pretrained as module

    module._net_cache.clear()
    net = get_pretrained_net(iterations=2, seed=1)
    cache_file = pretrained_cache_path(iterations=2, seed=1)
    assert cache_file.parent == tmp_path
    assert cache_file.exists()
    # No temp-file litter: the write is atomic (temp + os.replace).
    assert [p.name for p in tmp_path.glob("*.tmp*")] == []
    module._net_cache.clear()
    again = get_pretrained_net(iterations=2, seed=1)
    assert np.allclose(net.get_flat_params(), again.get_flat_params())


def test_cache_path_keyed_by_config(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = pretrained_cache_path(iterations=2, seed=1)
    b = pretrained_cache_path(iterations=3, seed=1)
    c = pretrained_cache_path(iterations=2, seed=2)
    d = pretrained_cache_path(iterations=2, seed=1, variant="custom-local")
    assert len({a, b, c, d}) == 4
    assert a == pretrained_cache_path(iterations=2, seed=1)


def test_memo_cache_returns_same_object(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = get_pretrained_net(iterations=2, seed=2)
    b = get_pretrained_net(iterations=2, seed=2)
    assert a is b


def test_classifier_memoized():
    assert get_classifier(seed=0) is get_classifier(seed=0)


def test_classifier_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.harness.pretrained as module

    module._classifier_cache.clear()
    first = get_classifier(seed=0)
    assert classifier_cache_path(seed=0).exists()
    module._classifier_cache.clear()
    second = get_classifier(seed=0)
    assert first is not second
    features = np.zeros((1, 4))
    assert first.predict_label(features) == second.predict_label(features)
