"""Seed-determinism regression: same seed, byte-identical telemetry.

The simulator, workload drivers, RL agents, and fault injector all draw
from seeded streams; two runs with identical inputs must replay exactly.
A drift here means some component picked up nondeterministic state
(dict ordering, wall-clock time, an unseeded RNG) and silently broke
reproducibility.
"""

from repro.config import RLConfig, SSDConfig
from repro.core.actionspace import ActionSpace
from repro.faults import slowdown_corruption_scenario
from repro.harness import Experiment, VssdPlan
from repro.harness.telemetry import events_to_csv, windows_to_csv
from repro.rl.nets import PolicyValueNet

FAST = SSDConfig(
    num_channels=4,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=32,
    min_superblock_blocks=4,
)


def _run(tmp_path, tag, with_faults=False):
    rl = RLConfig(decision_interval_s=0.5, batch_size=8)
    plans = [
        VssdPlan("ycsb", slo_latency_us=13085.0),
        VssdPlan("terasort", slo_latency_us=239516.0),
    ]
    space = ActionSpace(FAST.channel_write_bandwidth_mbps)
    net = PolicyValueNet(rl.state_dim, space.num_actions, (8, 8))
    faults = (
        slowdown_corruption_scenario(
            "ycsb",
            [0, 1],
            slowdown_factor=2.0,
            fault_start_s=1.5,
            fault_duration_s=1.0,
            corruption_start_s=1.5,
            corruption_duration_s=0.5,
        )
        if with_faults
        else None
    )
    exp = Experiment(
        plans,
        "fleetio",
        ssd_config=FAST,
        rl_config=rl,
        seed=7,
        pretrained_net=net,
        fleetio_kwargs={"unified_alpha_only": True},
        faults=faults,
        guardrails=with_faults,
    )
    result = exp.run(4.0, 1.0)
    histories = {
        plan.name: exp.controller.monitors[
            exp.virt.vssd_by_name(plan.name).vssd_id
        ].window_history
        for plan in plans
    }
    windows = tmp_path / f"windows-{tag}.csv"
    windows_to_csv(histories, windows)
    events = tmp_path / f"events-{tag}.csv"
    events_to_csv(result.fault_events + result.guardrail_events, events)
    return windows.read_bytes(), events.read_bytes()


def test_same_seed_runs_are_byte_identical(tmp_path):
    first = _run(tmp_path, "one")
    second = _run(tmp_path, "two")
    assert first[0] == second[0]


def test_same_seed_fault_runs_are_byte_identical(tmp_path):
    first = _run(tmp_path, "fault-one", with_faults=True)
    second = _run(tmp_path, "fault-two", with_faults=True)
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert len(first[1].splitlines()) > 1  # fault events actually exported
