"""Tests for run_policy_comparison and the manager-backed policies."""

import pytest

from repro.config import RLConfig, SSDConfig
from repro.harness import plans_for_pair, run_policy_comparison
from repro.harness.experiment import Experiment


@pytest.fixture
def fast_config():
    return SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=16,
        pages_per_block=32,
        min_superblock_blocks=4,
    )


def test_slo_calibrated_from_hardware_run(fast_config):
    plans = plans_for_pair("ycsb", "batchanalytics")
    results = run_policy_comparison(
        plans,
        policies=("hardware", "software"),
        duration_s=4.0,
        measure_after_s=1.0,
        ssd_config=fast_config,
    )
    # After the hardware run, every plan's SLO is its hardware P99.
    for plan in plans:
        assert plan.slo_latency_us == pytest.approx(
            results["hardware"].vssd(plan.name).p99_latency_us
        )
    # The software run's violation metric used that SLO: close to 1% for
    # hardware (by the P99 definition) and higher under contention for
    # the latency tenant.
    assert results["software"].vssd("ycsb").slo_violation_frac >= 0.0


def test_hardware_runs_first_even_if_not_listed_first(fast_config):
    plans = plans_for_pair("ycsb", "batchanalytics")
    results = run_policy_comparison(
        plans,
        policies=("software", "hardware"),
        duration_s=3.0,
        measure_after_s=1.0,
        ssd_config=fast_config,
    )
    # Output preserves the requested order but calibration happened.
    assert list(results) == ["software", "hardware"]
    assert all(plan.slo_latency_us is not None for plan in plans)


def test_adaptive_policy_through_experiment(fast_config):
    plans = plans_for_pair("ycsb", "batchanalytics")
    rl = RLConfig(decision_interval_s=0.5)
    result = Experiment(
        plans, "adaptive", ssd_config=fast_config, rl_config=rl
    ).run(duration_s=4.0, measure_after_s=1.0)
    assert result.vssd("batchanalytics").mean_bw_mbps > 0
    assert result.admission_stats.submitted >= 0


def test_ssdkeeper_policy_through_experiment(fast_config):
    plans = plans_for_pair("ycsb", "batchanalytics")
    result = Experiment(plans, "ssdkeeper", ssd_config=fast_config).run(
        duration_s=3.0, measure_after_s=1.0
    )
    # SSDKeeper statically partitions all channels.
    assert result.vssd("ycsb").completed > 0
    assert result.vssd("batchanalytics").completed > 0


def test_results_exportable(fast_config, tmp_path):
    from repro.harness import results_to_csv, utilization_chart

    plans = plans_for_pair("ycsb", "batchanalytics")
    results = run_policy_comparison(
        plans,
        policies=("hardware",),
        duration_s=2.0,
        measure_after_s=0.5,
        ssd_config=fast_config,
    )
    rows = results_to_csv(results, tmp_path / "out.csv")
    assert rows == 2
    chart = utilization_chart(results)
    assert "hardware" in chart
