"""Tests for per-window telemetry export."""

import csv

import pytest

from repro.core.actionspace import ActionSpace
from repro.core.controller import FleetIoController
from repro.harness.telemetry import controller_actions_to_csv, windows_to_csv
from repro.rl import PolicyValueNet
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def run(small_config, tiny_rl_config):
    virt = StorageVirtualizer(config=small_config)
    space = ActionSpace(small_config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(tiny_rl_config.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(
        virt, net, rl_config=tiny_rl_config, explore=True, finetune=False
    )
    a = virt.create_vssd("a", [0, 1], slo_latency_us=2000.0)
    b = virt.create_vssd("b", [2, 3], slo_latency_us=2000.0)
    controller.register_vssd(a)
    controller.register_vssd(b)
    controller.start()
    for i in range(40):
        virt.dispatcher.submit(
            IoRequest(a.vssd_id, "write", i, 1, small_config.page_size, virt.sim.now)
        )
    virt.sim.run_until_seconds(0.45)
    return virt, controller, a, b


def test_windows_to_csv(run, tmp_path):
    virt, controller, a, b = run
    histories = {
        "a": controller.monitors[a.vssd_id].window_history,
        "b": controller.monitors[b.vssd_id].window_history,
    }
    path = tmp_path / "windows.csv"
    rows = windows_to_csv(histories, path)
    assert rows >= 6  # >= 3 windows x 2 vSSDs
    with path.open() as handle:
        parsed = list(csv.DictReader(handle))
    assert parsed[0]["vssd"] == "a"
    assert float(parsed[0]["window_end_s"]) > 0
    # Windows are contiguous per vSSD.
    a_rows = [r for r in parsed if r["vssd"] == "a"]
    for earlier, later in zip(a_rows, a_rows[1:]):
        assert float(later["window_start_s"]) == pytest.approx(
            float(earlier["window_end_s"])
        )


def test_window_csv_reads_writes_roundtrip(run, tmp_path):
    virt, controller, a, _b = run
    history = controller.monitors[a.vssd_id].window_history
    path = tmp_path / "windows.csv"
    windows_to_csv({"a": history}, path)
    with path.open() as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == len(history)
    for row, window in zip(parsed, history):
        assert int(row["reads"]) == window.reads
        assert int(row["writes"]) == window.writes
        assert int(row["reads"]) + int(row["writes"]) == int(row["completed"])
    # The fixture submits writes only; they must survive the round trip.
    assert sum(int(row["writes"]) for row in parsed) > 0
    assert sum(int(row["reads"]) for row in parsed) == 0


def test_controller_actions_to_csv(run, tmp_path):
    virt, controller, _a, _b = run
    path = tmp_path / "actions.csv"
    rows = controller_actions_to_csv(controller, path)
    assert rows == 2 * len(controller.window_log)
    with path.open() as handle:
        parsed = list(csv.DictReader(handle))
    families = {row["family"] for row in parsed}
    assert families <= {"harvest", "make_harvestable", "set_priority"}
    assert all("(" in row["action"] for row in parsed)
