"""Warm-state snapshot/restore: bit-exactness and cache-key coverage.

The snapshot layer may only exist because it provably changes nothing:
an experiment restored from a warm snapshot must be indistinguishable —
telemetry rows, RNG draw positions, engine scalars, detsan checkpoints —
from one that paid the cold build+warm.  These tests pin that contract
on a small device, plus the cache-key sensitivity that keeps distinct
warm states from ever sharing an entry.
"""

import numpy as np
import pytest

from repro.config import SSDConfig
from repro.harness import Experiment, VssdPlan
from repro.harness import snapshots
from repro.harness.telemetry import windows_to_csv
from repro.parallel import ExperimentCell, run_cell
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

FAST = SSDConfig(
    num_channels=4,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=32,
    min_superblock_blocks=4,
)

PLANS = [
    VssdPlan("ycsb", slo_latency_us=13085.0),
    VssdPlan("terasort", slo_latency_us=239516.0),
]


@pytest.fixture(autouse=True)
def _clean_cache(monkeypatch, tmp_path):
    """Every test starts from an empty cache and its own disk root."""
    snapshots.clear_memory_cache()
    snapshots.reset_stats()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SNAPSHOTS", raising=False)
    yield
    snapshots.clear_memory_cache()
    snapshots.reset_stats()


def _experiment(policy="hardware", config=FAST, seed=7, snapshots_flag=None):
    return Experiment(
        [VssdPlan(p.workload, slo_latency_us=p.slo_latency_us) for p in PLANS],
        policy,
        ssd_config=config,
        seed=seed,
        snapshots=snapshots_flag,
    )


def _state_fingerprint(exp):
    """Every snapshot-covered piece of post-build state, comparison-ready."""
    virt = exp.virt
    return {
        "engine": virt.sim.snapshot(),
        "streams": exp.streams.snapshot(),
        "store": virt.ssd.store.snapshot(),
        "arrays": virt.ssd.arrays.snapshot(),
        "ftls": {
            plan.name: virt.vssd_by_name(plan.name).ftl.snapshot()
            for plan in exp.plans
        },
    }


def _assert_fingerprints_equal(a, b):
    assert a["engine"] == b["engine"]
    assert a["streams"] == b["streams"]
    assert a["arrays"] == b["arrays"]
    for name in ("page_lpns", "erase_count"):
        assert np.array_equal(a["store"][name], b["store"][name]), name
    for name in ("state", "owner", "writer", "harvested", "write_ptr",
                 "valid_count"):
        assert a["store"][name] == b["store"][name], name
    assert a["ftls"] == b["ftls"]


# ---------------------------------------------------------------------
# Restore-vs-cold bit-exactness
# ---------------------------------------------------------------------
def test_restored_build_state_equals_cold_build():
    cold = _experiment(snapshots_flag=False).build()
    _experiment(snapshots_flag=True).build()  # miss: warms + captures
    assert snapshots.STATS["misses"] == 1 and snapshots.STATS["stores"] == 1
    restored = _experiment(snapshots_flag=True).build()  # hit: restores
    assert snapshots.STATS["hits"] == 1
    _assert_fingerprints_equal(
        _state_fingerprint(cold), _state_fingerprint(restored)
    )


def test_restored_run_telemetry_identical_to_cold(tmp_path):
    def run(tag, flag):
        exp = _experiment(snapshots_flag=flag)
        exp.run(2.0, 0.5)
        histories = {
            plan.name: exp.monitors[plan.name].window_history
            for plan in exp.plans
        }
        path = tmp_path / f"windows-{tag}.csv"
        windows_to_csv(histories, path)
        return path.read_bytes()

    cold = run("cold", False)
    run("prime", True)  # populates the cache
    warm = run("warm", True)
    assert snapshots.STATS["hits"] == 1
    assert cold == warm


def test_rng_positions_identical_after_restored_run():
    _experiment(snapshots_flag=True).build()
    cold = _experiment(snapshots_flag=False)
    cold.run(1.0, 0.25)
    warm = _experiment(snapshots_flag=True)
    warm.run(1.0, 0.25)
    assert snapshots.STATS["hits"] == 1
    assert cold.streams.snapshot() == warm.streams.snapshot()
    # The heap still holds live events post-run, so compare the engine's
    # scalars directly rather than through snapshot().
    assert cold.virt.sim.now == warm.virt.sim.now
    assert cold.virt.sim._next_seq == warm.virt.sim._next_seq
    assert cold.virt.sim.events_processed == warm.virt.sim.events_processed


def test_detsan_checkpoints_identical_after_restore(monkeypatch):
    monkeypatch.setenv("REPRO_DETSAN", "1")
    cell = ExperimentCell(
        "s", ("ycsb",), "hardware", 0, duration_s=1.0, measure_after_s=0.25
    )
    monkeypatch.setenv("REPRO_SNAPSHOTS", "off")
    cold = run_cell(cell, profile=False)
    monkeypatch.setenv("REPRO_SNAPSHOTS", "mem")
    run_cell(cell, profile=False)  # prime
    warm = run_cell(cell, profile=False)
    assert snapshots.STATS["hits"] == 1
    assert cold.ok and warm.ok
    assert cold.telemetry == warm.telemetry
    assert cold.detsan is not None
    assert cold.detsan == warm.detsan


def test_snapshots_off_never_touches_cache(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOTS", "off")
    _experiment().build()
    _experiment().build()
    assert snapshots.STATS == {
        "hits": 0, "misses": 0, "disk_hits": 0, "stores": 0
    }


# ---------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------
def _key_of(exp):
    exp_copy = exp
    allocation = exp_copy._plan_allocation()
    return snapshots.warm_cache_key(exp_copy, allocation)


def test_cache_key_sensitive_to_hardware_config():
    base = _key_of(_experiment())
    bigger = SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=16,
        pages_per_block=64,
        min_superblock_blocks=4,
    )
    assert _key_of(_experiment(config=bigger)) != base


def test_cache_key_sensitive_to_warm_spec():
    base = _experiment()
    other = Experiment(
        [
            VssdPlan("webserver", slo_latency_us=13085.0),
            VssdPlan("terasort", slo_latency_us=239516.0),
        ],
        "hardware",
        ssd_config=FAST,
        seed=7,
    )
    assert _key_of(other) != _key_of(base)


def test_cache_key_sensitive_to_seed():
    assert _key_of(_experiment(seed=8)) != _key_of(_experiment(seed=7))


def test_policies_with_identical_warm_share_a_key():
    # hardware and fleetio derive the same allocation and isolation for
    # these plans, so they warm identically and may share one snapshot.
    assert _key_of(_experiment("hardware")) == _key_of(_experiment("fleetio"))


def test_distinct_configs_do_not_hit_each_others_entries():
    _experiment(seed=7, snapshots_flag=True).build()
    _experiment(seed=8, snapshots_flag=True).build()
    assert snapshots.STATS["hits"] == 0
    assert snapshots.STATS["misses"] == 2


# ---------------------------------------------------------------------
# Disk layer
# ---------------------------------------------------------------------
def test_disk_roundtrip_restores_identical_state(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOTS", "disk")
    cold = _experiment(snapshots_flag=False).build()
    _experiment().build()  # miss: warms, captures, writes the .npz
    assert snapshots.STATS["stores"] == 1
    snapshots.clear_memory_cache()  # force the next hit through the disk
    restored = _experiment().build()
    assert snapshots.STATS["disk_hits"] == 1
    _assert_fingerprints_equal(
        _state_fingerprint(cold), _state_fingerprint(restored)
    )


def test_corrupt_disk_entry_degrades_to_miss(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SNAPSHOTS", "disk")
    exp = _experiment()
    key = _key_of(exp)
    path = snapshots._snapshot_path(key)
    path.write_bytes(b"not an npz")
    exp.build()
    assert snapshots.STATS["misses"] == 1
    assert snapshots.STATS["disk_hits"] == 0


# ---------------------------------------------------------------------
# Engine + RNG snapshot primitives
# ---------------------------------------------------------------------
def test_engine_snapshot_rejects_pending_events():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    with pytest.raises(ValueError, match="heap"):
        sim.snapshot()


def test_engine_restore_rejects_pending_events():
    sim = Simulator()
    sim.run_until(1.0)
    snap = sim.snapshot()
    target = Simulator()
    target.schedule(5.0, lambda: None)
    with pytest.raises(ValueError, match="pending"):
        target.restore(snap)


def test_engine_restore_replays_pool_recycling_identically():
    """A restored engine recycles pooled Event objects on the original's
    schedule: same (time, seq) order, same now, same pool growth."""

    def churn(sim):
        fired = []
        for i in range(8):
            sim.schedule(float(i + 1), fired.append, i)
        keep = sim.schedule(20.0, fired.append, 99)
        sim.schedule(3.5, keep.cancel)
        sim.run_until(30.0)
        return fired, sim.now, sim._next_seq, len(sim._pool)

    origin = Simulator()
    for i in range(4):  # build up a non-empty free list before capture
        origin.schedule(float(i + 1), lambda: None)
    origin.run_until(10.0)
    snap = origin.snapshot()

    twin = Simulator()
    twin.restore(snap)
    assert len(twin._pool) == len(origin._pool)
    assert churn(origin) == churn(twin)


def test_random_streams_snapshot_restores_draw_positions():
    streams = RandomStreams(42)
    streams.get("a").random(5)
    streams.get("b").integers(0, 100, 7)
    snap = streams.snapshot()
    expected_a = streams.get("a").random(3).tolist()
    expected_b = streams.get("b").integers(0, 100, 3).tolist()
    streams.restore(snap)
    assert streams.get("a").random(3).tolist() == expected_a
    assert streams.get("b").integers(0, 100, 3).tolist() == expected_b


def test_random_streams_restore_rejects_seed_mismatch():
    snap = RandomStreams(1).snapshot()
    with pytest.raises(ValueError, match="seed"):
        RandomStreams(2).restore(snap)


def test_memory_cache_bounded():
    for i in range(snapshots._MEMORY_CACHE_MAX + 4):
        snapshots._memory_put(f"key{i}", {"i": i})
    assert len(snapshots._MEMORY_CACHE) == snapshots._MEMORY_CACHE_MAX


# ---------------------------------------------------------------------
# Disk-layer concurrency
# ---------------------------------------------------------------------
def _hammer_atomic_replace(path_str: str, fill: int, rounds: int) -> None:
    """Child body: repeatedly replace ``path`` with a ``fill``-valued npz."""
    from pathlib import Path

    from repro.harness.pretrained import _atomic_replace

    path = Path(path_str)
    payload = np.full(60_000, fill, dtype=np.int64)
    for _ in range(rounds):
        _atomic_replace(lambda tmp: np.savez(tmp, payload=payload), path)


def test_atomic_replace_race_never_tears(tmp_path):
    """Two processes racing ``_atomic_replace`` on the same warmstate
    path: every read — concurrent or final — decodes a complete file
    written entirely by one of them, and no tmp litter survives.

    The pid-suffixed tmp names keep the writers off each other's
    scratch files, and ``os.replace`` swaps whole inodes, so a reader
    can never observe a half-written ``warmstate_<key>.npz``.
    """
    import multiprocessing

    path = tmp_path / "warmstate_deadbeef0123.npz"
    rounds = 60
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(
            target=_hammer_atomic_replace, args=(str(path), fill, rounds)
        )
        for fill in (1, 2)
    ]
    for proc in writers:
        proc.start()
    try:
        while any(proc.is_alive() for proc in writers):
            if not path.exists():
                continue  # raced the very first replace
            with np.load(path, allow_pickle=False) as data:
                payload = data["payload"]
            assert payload.shape == (60_000,)
            values = np.unique(payload)
            assert len(values) == 1 and int(values[0]) in (1, 2), values
    finally:
        for proc in writers:
            proc.join(timeout=120)
    assert [proc.exitcode for proc in writers] == [0, 0]
    with np.load(path, allow_pickle=False) as data:
        values = np.unique(data["payload"])
    assert len(values) == 1 and int(values[0]) in (1, 2)
    assert list(tmp_path.glob(".*.tmp*")) == []


def test_cache_get_survives_corrupt_disk_snapshot(tmp_path, monkeypatch):
    """A torn/garbage ``warmstate_<key>.npz`` is a miss, not a crash."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    path = snapshots._snapshot_path("feedface4242")
    path.write_bytes(b"PK\x03\x04 definitely not a complete zip")
    assert snapshots.cache_get("feedface4242", "disk") is None
    assert snapshots.STATS["misses"] == 1
