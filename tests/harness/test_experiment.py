"""Tests for the experiment harness (fast, small configurations)."""

import pytest

from repro.config import SSDConfig
from repro.harness import Experiment, VssdPlan, plans_for_pair


@pytest.fixture
def fast_config():
    """Small device so harness tests run in a couple of seconds."""
    return SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=16,
        pages_per_block=32,
        min_superblock_blocks=4,
    )


def test_plans_for_pair():
    plans = plans_for_pair("vdi-web", "terasort")
    assert [p.workload for p in plans] == ["vdi-web", "terasort"]
    assert plans[0].category == "latency"
    assert plans[1].category == "bandwidth"


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Experiment([VssdPlan("ycsb"), VssdPlan("ycsb")], "hardware")


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Experiment([VssdPlan("ycsb")], "warp-drive")


def test_hardware_allocation_equal_split(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "hardware", ssd_config=fast_config)
    exp.build()
    a = exp.virt.vssd_by_name("ycsb")
    b = exp.virt.vssd_by_name("mlprep")
    assert a.num_channels == b.num_channels == 2
    assert not set(a.channel_ids) & set(b.channel_ids)


def test_software_allocation_shares_all_channels(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "software", ssd_config=fast_config)
    exp.build()
    a = exp.virt.vssd_by_name("ycsb")
    assert a.channel_ids == [0, 1, 2, 3]
    assert a.isolation == "software"


def test_explicit_channel_counts(fast_config):
    plans = [VssdPlan("ycsb", n_channels=1), VssdPlan("mlprep", n_channels=3)]
    exp = Experiment(plans, "hardware", ssd_config=fast_config)
    exp.build()
    assert exp.virt.vssd_by_name("mlprep").num_channels == 3


def test_warmup_consumes_blocks(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "hardware", ssd_config=fast_config)
    exp.build()
    for name in ("ycsb", "mlprep"):
        vssd = exp.virt.vssd_by_name(name)
        # Section 4.1: at least 50% of free blocks consumed before runs.
        assert vssd.ftl.free_fraction() <= 0.5


def test_run_produces_results(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "hardware", ssd_config=fast_config)
    result = exp.run(duration_s=2.0, measure_after_s=0.5)
    assert set(result.vssds) == {"ycsb", "mlprep"}
    assert result.vssd("ycsb").completed > 0
    assert result.vssd("mlprep").mean_bw_mbps > 0
    assert len(result.util_series) >= 1


def test_mixed_isolation_allocation(fast_config):
    plans = [
        VssdPlan("ycsb", n_channels=2, isolation="hardware"),
        VssdPlan("mlprep", isolation="software"),
        VssdPlan("terasort", name="terasort2", isolation="software"),
    ]
    exp = Experiment(plans, "mixed", ssd_config=fast_config)
    exp.build()
    assert exp.virt.vssd_by_name("ycsb").channel_ids == [0, 1]
    assert exp.virt.vssd_by_name("mlprep").channel_ids == [2, 3]
    assert exp.virt.vssd_by_name("terasort2").channel_ids == [2, 3]


def test_mixed_requires_explicit_hw_channels(fast_config):
    plans = [VssdPlan("ycsb", isolation="hardware"), VssdPlan("mlprep", isolation="software")]
    with pytest.raises(ValueError):
        Experiment(plans, "mixed", ssd_config=fast_config).build()


def test_workload_switch(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "hardware", ssd_config=fast_config)
    exp.build()
    exp.schedule_workload_switch("ycsb", "vdi-web", at_s=1.0)
    result = exp.run(duration_s=2.0, measure_after_s=0.2)
    assert exp.drivers["ycsb"].spec.name == "vdi-web"
    assert result.vssd("ycsb").completed > 0


def test_reset_measurement(fast_config):
    exp = Experiment(plans_for_pair("ycsb", "mlprep"), "hardware", ssd_config=fast_config)
    exp.build()
    exp.reset_measurement_at(1.5)
    result = exp.run(duration_s=2.0, measure_after_s=0.2)
    assert result.measure_start_s == pytest.approx(1.5)
