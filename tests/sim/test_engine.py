"""Tests for the discrete-event engine."""

import pytest



def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.now_seconds == 0.0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(10.0, fired.append, "late")
    sim.schedule(5.0, fired.append, "early")
    sim.schedule(7.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order(sim):
    fired = []
    for tag in range(5):
        sim.schedule(3.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(42.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [42.0]
    assert sim.now == 42.0


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(5.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancelled_event_not_counted_processed(sim):
    event = sim.schedule(5.0, lambda: None)
    event.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(25.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs"]
    assert sim.now == 25.0


def test_run_until_stops_at_boundary(sim):
    fired = []
    sim.schedule(5.0, fired.append, "in")
    sim.schedule(15.0, fired.append, "out")
    count = sim.run_until(10.0)
    assert count == 1
    assert fired == ["in"]
    assert sim.now == 10.0


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.schedule(10.0, fired.append, "edge")
    sim.run_until(10.0)
    assert fired == ["edge"]


def test_run_until_past_rejected(sim):
    sim.run_until(10.0)
    with pytest.raises(ValueError):
        sim.run_until(5.0)


def test_run_until_seconds(sim):
    fired = []
    sim.schedule(1_500_000.0, fired.append, "x")
    sim.run_until_seconds(2.0)
    assert fired == ["x"]
    assert sim.now_seconds == 2.0


def test_events_scheduled_during_events(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_max_events(sim):
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_events == 6


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_pending_events_ignores_cancelled(sim):
    sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1


def test_cancel_after_fire_is_harmless(sim):
    fired = []
    event = sim.schedule(5.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    event.cancel()  # must not raise or corrupt the heap
    sim.schedule(1.0, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]


def test_run_until_at_current_time_is_noop(sim):
    sim.run_until(10.0)
    assert sim.run_until(10.0) == 0
    assert sim.now == 10.0


def test_run_until_at_current_time_fires_zero_delay_events(sim):
    sim.run_until(10.0)
    fired = []
    sim.schedule(0.0, fired.append, "now")
    assert sim.run_until(10.0) == 1
    assert fired == ["now"]
    assert sim.now == 10.0


def test_equal_timestamp_ordering_mixed_schedule_calls(sim):
    fired = []
    sim.schedule_at(20.0, fired.append, "first")
    sim.schedule(20.0, fired.append, "second")
    sim.schedule_at(20.0, fired.append, "third")
    sim.run()
    assert fired == ["first", "second", "third"]


def test_equal_timestamp_ordering_survives_earlier_event(sim):
    fired = []
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.schedule(5.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "a", "b"]


def test_cancelled_events_compact_heap(sim):
    """Cancelled entries outnumbering live ones trigger compaction."""
    keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
    doomed = [sim.schedule(2000.0 + i, lambda: None) for i in range(500)]
    for event in doomed:
        event.cancel()
    assert sim.pending_events == 10
    # The heap must not retain the 500 cancelled entries: below the
    # compaction floor, or at most half-cancelled above it.
    assert sim.heap_size <= 64
    assert sim.heap_compactions >= 1
    assert all(not e.cancelled for e in keep)


def test_compaction_preserves_fire_order(sim):
    """Compaction (filter + heapify) must not change firing order."""
    fired = []
    survivors = []
    for i in range(200):
        event = sim.schedule(float(100 + i), fired.append, i)
        if i % 3 == 0:
            event.cancel()
        else:
            survivors.append(i)
    sim.run()
    assert fired == survivors


def test_pending_events_is_live_count_after_cancels(sim):
    events = [sim.schedule(10.0 + i, lambda: None) for i in range(30)]
    for event in events[:12]:
        event.cancel()
    assert sim.pending_events == 18
    # Double-cancel must not decrement twice.
    events[0].cancel()
    assert sim.pending_events == 18
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 18


def test_long_cancel_churn_keeps_heap_bounded(sim):
    """The dispatcher's cancel/reschedule pattern must not grow the heap."""
    for round_ in range(50):
        batch = [sim.schedule(1e6 + round_ * 100 + i, lambda: None) for i in range(10)]
        for event in batch:
            event.cancel()
    assert sim.pending_events == 0
    assert sim.heap_size <= 64
    assert sim.heap_compactions >= 1


def test_cancelled_head_discarded_by_run_until(sim):
    fired = []
    head = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "live")
    head.cancel()
    sim.run_until(5.0)
    assert fired == ["live"]
    assert sim.pending_events == 0


def test_stale_cancel_after_compaction_is_noop(sim):
    """Handles to compaction-collected events are inert until reuse.

    Compaction parks cancelled events in the free list with
    ``time = _DEAD`` (or, past the pool cap, leaves them to the GC with
    ``cancelled`` still set); a second ``cancel()`` through a retained
    handle must not decrement the live count again or touch any live
    event.
    """
    doomed = [sim.schedule(100.0 + i, lambda: None) for i in range(200)]
    keep = sim.schedule(5000.0, lambda: None)
    for event in doomed:
        event.cancel()
    assert sim.heap_compactions >= 1
    for event in doomed:  # stale handles: parked or collected objects
        event.cancel()
    # pending_events is heap size minus the cancelled count, so a
    # double-decrement would show up here as a value above 1.
    assert sim.pending_events == 1
    assert not keep.cancelled
    sim.run()
    assert sim.events_processed == 1


def test_pool_recycling_stress_no_aliasing(sim):
    """Randomized churn across all three Event release paths.

    Drives fired-event recycling, cancelled-head discards inside
    ``run_until``'s batch drain, and mid-callback compactions against
    heavy free-list reuse, with callbacks cancelling pending events and
    scheduling same-instant followers (which join the running batch and
    recycle freshly parked objects).  A recycled Event whose stale heap
    tuple survived — the aliasing the free list must never produce —
    would fire the wrong id, fire twice, or skew the counts.
    """
    import random

    rng = random.Random(1234)
    fired = []
    expected = set()  # ids that must fire exactly once
    pending = {}  # id -> Event handle, dropped on fire/cancel
    next_id = [0]

    def spawn(delay):
        i = next_id[0]
        next_id[0] += 1
        pending[i] = sim.schedule(delay, on_fire, i)
        expected.add(i)

    def on_fire(i):
        fired.append(i)
        pending.pop(i, None)  # drop the handle as it is recycled
        # Cancel a few random pending events (can trigger compaction
        # mid-batch) ...
        count = min(len(pending), rng.randrange(3))
        for victim in rng.sample(sorted(pending), count):
            pending.pop(victim).cancel()
            expected.discard(victim)
        # ... and schedule followers, half at this exact instant.
        if next_id[0] < 1500:
            for _ in range(rng.randrange(3)):
                spawn(0.0 if rng.random() < 0.5 else rng.uniform(1.0, 50.0))

    for _ in range(300):
        spawn(rng.uniform(0.0, 100.0))
    # A cancel storm with the heap hot forces early compactions.
    for victim in rng.sample(sorted(pending), 150):
        pending.pop(victim).cancel()
        expected.discard(victim)
    sim.run_until(1_000_000.0)
    assert len(fired) == len(set(fired))  # nothing fired twice
    assert sorted(fired) == sorted(expected)  # cancelled never fire
    assert sim.pending_events == 0
    assert sim.events_processed == len(fired)
    assert sim.heap_compactions >= 1
