"""Tests for named random streams."""

from repro.sim import RandomStreams


def test_same_name_returns_same_generator():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_streams_are_reproducible_across_instances():
    a = RandomStreams(seed=5).get("workload").random(10)
    b = RandomStreams(seed=5).get("workload").random(10)
    assert (a == b).all()


def test_different_names_differ():
    streams = RandomStreams(seed=5)
    a = streams.get("x").random(10)
    b = streams.get("y").random(10)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(10)
    b = RandomStreams(seed=2).get("x").random(10)
    assert not (a == b).all()


def test_spawn_is_deterministic():
    a = RandomStreams(seed=3).spawn("rep1").get("x").random(5)
    b = RandomStreams(seed=3).spawn("rep1").get("x").random(5)
    assert (a == b).all()


def test_spawn_differs_from_parent():
    parent = RandomStreams(seed=3)
    child = parent.spawn("rep1")
    assert not (parent.get("x").random(5) == child.get("x").random(5)).all()
