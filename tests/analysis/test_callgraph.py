"""Unit tests for the whole-program call graph and the tag dataflow.

These are the two engines under the project rules; testing them directly
keeps rule fixtures honest (a fixture that stops flagging should fail
*here* first, at the resolution step that broke).
"""

import ast

from repro.analysis.callgraph import ProjectContext
from repro.analysis.context import ModuleContext, module_name
from repro.analysis.dataflow import TagAnalysis, literal_str


def project(sources):
    return ProjectContext(
        ModuleContext.from_source(path, text) for path, text in sources.items()
    )


class TestModuleName:
    def test_source_file(self):
        assert module_name("src/repro/sim/engine.py") == "repro.sim.engine"

    def test_package_init(self):
        assert module_name("src/repro/sim/__init__.py") == "repro.sim"

    def test_outside_tree(self):
        assert module_name("scripts/tool.py") is None


class TestCallResolution:
    def test_direct_import_call(self):
        p = project(
            {
                "src/repro/a/util.py": "def helper():\n    return 1\n",
                "src/repro/b/use.py": (
                    "from repro.a.util import helper\n"
                    "\n"
                    "def go():\n"
                    "    return helper()\n"
                ),
            }
        )
        assert p.callees("repro.b.use.go") == frozenset({"repro.a.util.helper"})
        assert p.callers("repro.a.util.helper") == frozenset({"repro.b.use.go"})

    def test_reexport_chasing(self):
        p = project(
            {
                "src/repro/a/util.py": "def helper():\n    return 1\n",
                "src/repro/a/__init__.py": "from repro.a.util import helper\n",
                "src/repro/b/use.py": (
                    "from repro.a import helper\n"
                    "\n"
                    "def go():\n"
                    "    return helper()\n"
                ),
            }
        )
        assert "repro.a.util.helper" in p.callees("repro.b.use.go")

    def test_self_method_call(self):
        p = project(
            {
                "src/repro/a/thing.py": (
                    "class Thing:\n"
                    "    def outer(self):\n"
                    "        return self.inner()\n"
                    "\n"
                    "    def inner(self):\n"
                    "        return 1\n"
                ),
            }
        )
        assert p.callees("repro.a.thing.Thing.outer") == frozenset(
            {"repro.a.thing.Thing.inner"}
        )

    def test_method_via_typed_param(self):
        p = project(
            {
                "src/repro/a/thing.py": (
                    "class Thing:\n"
                    "    def inner(self):\n"
                    "        return 1\n"
                ),
                "src/repro/b/use.py": (
                    "from repro.a.thing import Thing\n"
                    "\n"
                    "def go(t: Thing):\n"
                    "    return t.inner()\n"
                ),
            }
        )
        assert "repro.a.thing.Thing.inner" in p.callees("repro.b.use.go")

    def test_method_via_self_attr_chain(self):
        p = project(
            {
                "src/repro/a/thing.py": (
                    "class Engine:\n"
                    "    def tick(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Holder:\n"
                    "    def __init__(self):\n"
                    "        self.engine = Engine()\n"
                    "\n"
                    "    def go(self):\n"
                    "        return self.engine.tick()\n"
                ),
            }
        )
        assert "repro.a.thing.Engine.tick" in p.callees("repro.a.thing.Holder.go")

    def test_inherited_method_resolves_to_base(self):
        p = project(
            {
                "src/repro/a/thing.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def go(self):\n"
                    "        return self.shared()\n"
                ),
            }
        )
        assert "repro.a.thing.Base.shared" in p.callees("repro.a.thing.Child.go")

    def test_reachable_is_transitive(self):
        p = project(
            {
                "src/repro/a/m.py": (
                    "def a():\n"
                    "    return b()\n"
                    "\n"
                    "def b():\n"
                    "    return c()\n"
                    "\n"
                    "def c():\n"
                    "    return 1\n"
                    "\n"
                    "def island():\n"
                    "    return 2\n"
                ),
            }
        )
        reached = p.reachable(["repro.a.m.a"])
        assert "repro.a.m.c" in reached
        assert "repro.a.m.island" not in reached

    def test_unknown_calls_under_approximate(self):
        p = project(
            {
                "src/repro/a/m.py": (
                    "def go(fn):\n"
                    "    return fn() + unknown_global()\n"
                ),
            }
        )
        assert p.callees("repro.a.m.go") == frozenset()


def run_tags(body, seed_name="tainted"):
    """Run TagAnalysis over a function body; ``tainted()`` seeds a tag."""
    src = "def fn(arg):\n" + "".join(f"    {line}\n" for line in body)
    fn = ast.parse(src).body[0]

    def seed(node, env):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == seed_name
        ):
            return frozenset({"T"})
        return frozenset()

    return TagAnalysis(seed).run(fn)


class TestTagDataflow:
    def test_assignment_propagates(self):
        result = run_tags(["x = tainted()", "y = x"])
        assert result.tags_of("y") == frozenset({"T"})

    def test_strong_update_clears(self):
        result = run_tags(["x = tainted()", "x = 1"])
        assert result.tags_of("x") == frozenset()

    def test_branches_join(self):
        result = run_tags(
            ["if arg:", "    x = tainted()", "else:", "    x = 1", "y = x"]
        )
        assert result.tags_of("y") == frozenset({"T"})

    def test_loop_carried_tag(self):
        # The tag is assigned late in the body and read early; one pass
        # would miss it, the two-pass loop body catches it.
        result = run_tags(
            ["for i in arg:", "    y = x if i else None", "    x = tainted()"]
        )
        assert result.tags_of("y") == frozenset({"T"})

    def test_return_is_recorded(self):
        result = run_tags(["x = tainted()", "return x"])
        assert result.returned == frozenset({"T"})

    def test_call_arg_use_is_recorded(self):
        result = run_tags(["x = tainted()", "sink(x)"])
        assert any(u.kind == "call-arg" and u.tag == "T" for u in result.uses)

    def test_store_on_self_is_recorded(self):
        src = (
            "def fn(self):\n"
            "    x = tainted()\n"
            "    self.kept = x\n"
        )
        fn = ast.parse(src).body[0]

        def seed(node, env):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "tainted"
            ):
                return frozenset({"T"})
            return frozenset()

        result = TagAnalysis(seed).run(fn)
        assert result.stored_on_self.get("kept") == {"T"}

    def test_untagged_stays_clean(self):
        result = run_tags(["x = 1", "y = x + 2"])
        assert result.tags_of("y") == frozenset()


class TestLiteralStr:
    def test_plain_string(self):
        assert literal_str(ast.parse("'abc'", mode="eval").body) == "abc"

    def test_fstring_is_dynamic(self):
        assert literal_str(ast.parse("f'a{b}'", mode="eval").body) is None
