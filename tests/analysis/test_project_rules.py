"""Fixture tests for the whole-program (interprocedural) rules.

Each of the four project rules gets cross-module fixtures it must flag
and near-miss fixtures it must stay silent on.  ``lint_sources`` lints a
dict of path -> source as one program, so fixtures exercise the call
graph and dataflow passes without touching the filesystem.  Paths under
``src/repro/...`` give the modules their real dotted names, which is
what the rules key their ownership checks on.
"""

from repro.analysis import lint_sources

# The streams hub the stream-leak rule recognizes; fixtures that need a
# RandomStreams receiver include this stub under its canonical path.
STREAMS_STUB = """\
class RandomStreams:
    def __init__(self, seed=0):
        self._streams = {}

    def get(self, name):
        return self._streams.setdefault(name, object())
"""


def rules_hit(sources, **kwargs):
    return {f.rule for f in lint_sources(sources, **kwargs).findings}


def findings_for(sources, rule):
    return [
        f for f in lint_sources(sources, rules=[rule]).findings if f.rule == rule
    ]


# ----------------------------------------------------------------------
# rng-stream-leak
# ----------------------------------------------------------------------
class TestStreamLeak:
    def test_flags_module_level_hub(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/workloads/gen.py": (
                "from repro.sim.random import RandomStreams\n"
                "STREAMS = RandomStreams(seed=0)\n"
            ),
        }
        hits = findings_for(sources, "rng-stream-leak")
        assert len(hits) == 1
        assert hits[0].path == "src/repro/workloads/gen.py"
        assert hits[0].line == 2

    def test_flags_module_level_stream_generator(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/ssd/gc.py": (
                "from repro.sim.random import RandomStreams\n"
                'RNG = RandomStreams(0).get("gc")\n'
            ),
        }
        assert "rng-stream-leak" in rules_hit(sources)

    def test_flags_cross_package_stream_return(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/ssd/util.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def gc_rng(streams: RandomStreams):\n"
                '    return streams.get("gc")\n'
            ),
            "src/repro/core/user.py": (
                "from repro.ssd.util import gc_rng\n"
                "\n"
                "def pick(streams):\n"
                "    return gc_rng(streams).random()\n"
            ),
        }
        hits = findings_for(sources, "rng-stream-leak")
        assert len(hits) == 1
        assert hits[0].path == "src/repro/ssd/util.py"
        assert "repro.core" in hits[0].message

    def test_clean_same_package_return(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/ssd/util.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def gc_rng(streams: RandomStreams):\n"
                '    return streams.get("gc")\n'
            ),
            "src/repro/ssd/gc.py": (
                "from repro.ssd.util import gc_rng\n"
                "\n"
                "def collect(streams):\n"
                "    return gc_rng(streams).random()\n"
            ),
        }
        assert "rng-stream-leak" not in rules_hit(sources)

    def test_flags_same_stream_name_from_two_packages(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/ssd/gc.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def pick(streams: RandomStreams):\n"
                '    return streams.get("victim").random()\n'
            ),
            "src/repro/core/policy.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def decide(streams: RandomStreams):\n"
                '    return streams.get("victim").random()\n'
            ),
        }
        hits = findings_for(sources, "rng-stream-leak")
        # Home package is the alphabetically first (repro.core); the
        # draw from repro.ssd is the flagged intruder.
        assert len(hits) == 1
        assert hits[0].path == "src/repro/ssd/gc.py"

    def test_clean_distinct_stream_names(self):
        sources = {
            "src/repro/sim/random.py": STREAMS_STUB,
            "src/repro/ssd/gc.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def pick(streams: RandomStreams):\n"
                '    return streams.get("gc:victim").random()\n'
            ),
            "src/repro/core/policy.py": (
                "from repro.sim.random import RandomStreams\n"
                "\n"
                "def decide(streams: RandomStreams):\n"
                '    return streams.get("policy:explore").random()\n'
            ),
        }
        assert "rng-stream-leak" not in rules_hit(sources)


# ----------------------------------------------------------------------
# parallel-shared-mutation
# ----------------------------------------------------------------------
WORKER_STUB = """\
from repro.harness.cache import record, absorb_profile

def _run_experiment(cell):
    record(cell)
    return cell

RUNNERS = {"experiment": _run_experiment}

def run_cell(cell):
    absorb_profile(cell)
    return RUNNERS[cell.runner](cell)
"""


class TestSharedMutation:
    def test_flags_global_write_reachable_from_worker(self):
        sources = {
            "src/repro/parallel/worker.py": WORKER_STUB,
            "src/repro/harness/cache.py": (
                "_CACHE = {}\n"
                "\n"
                "def record(cell):\n"
                "    _CACHE[cell] = 1\n"
                "\n"
                "def absorb_profile(cell):\n"
                "    pass\n"
            ),
        }
        hits = findings_for(sources, "parallel-shared-mutation")
        assert len(hits) == 1
        assert hits[0].path == "src/repro/harness/cache.py"
        assert hits[0].line == 4

    def test_flags_mutator_method_call(self):
        sources = {
            "src/repro/parallel/worker.py": WORKER_STUB,
            "src/repro/harness/cache.py": (
                "_SEEN = []\n"
                "\n"
                "def record(cell):\n"
                "    _SEEN.append(cell)\n"
                "\n"
                "def absorb_profile(cell):\n"
                "    pass\n"
            ),
        }
        assert "parallel-shared-mutation" in rules_hit(sources)

    def test_clean_absorb_function_is_sanctioned(self):
        sources = {
            "src/repro/parallel/worker.py": WORKER_STUB,
            "src/repro/harness/cache.py": (
                "_MERGED = {}\n"
                "\n"
                "def record(cell):\n"
                "    pass\n"
                "\n"
                "def absorb_profile(cell):\n"
                "    _MERGED[cell] = 1\n"
            ),
        }
        assert "parallel-shared-mutation" not in rules_hit(sources)

    def test_clean_unreachable_writer(self):
        sources = {
            "src/repro/parallel/worker.py": WORKER_STUB,
            "src/repro/harness/cache.py": (
                "_CACHE = {}\n"
                "\n"
                "def record(cell):\n"
                "    pass\n"
                "\n"
                "def absorb_profile(cell):\n"
                "    pass\n"
                "\n"
                "def offline_tool(cell):\n"
                "    _CACHE[cell] = 1\n"
            ),
        }
        assert "parallel-shared-mutation" not in rules_hit(sources)

    def test_clean_local_shadow(self):
        sources = {
            "src/repro/parallel/worker.py": WORKER_STUB,
            "src/repro/harness/cache.py": (
                "_CACHE = {}\n"
                "\n"
                "def record(cell):\n"
                "    _CACHE = {}\n"
                "    _CACHE[cell] = 1\n"
                "\n"
                "def absorb_profile(cell):\n"
                "    pass\n"
            ),
        }
        assert "parallel-shared-mutation" not in rules_hit(sources)


# ----------------------------------------------------------------------
# hotpath-alloc
# ----------------------------------------------------------------------
class TestHotpathAlloc:
    def test_flags_comprehension_in_hot_loop(self):
        sources = {
            "src/repro/ssd/ftl.py": (
                "class VssdFtl:\n"
                "    def write_span(self, lpns):\n"
                "        for lpn in lpns:\n"
                "            pages = [p for p in self._map(lpn)]\n"
                "            self._commit(pages)\n"
                "\n"
                "    def _map(self, lpn):\n"
                "        return (lpn,)\n"
                "\n"
                "    def _commit(self, pages):\n"
                "        pass\n"
            ),
        }
        hits = findings_for(sources, "hotpath-alloc")
        assert len(hits) == 1
        assert hits[0].line == 4

    def test_flags_allocation_in_reachable_callee(self):
        sources = {
            "src/repro/ssd/ftl.py": (
                "from repro.ssd.alloc import pick_block\n"
                "\n"
                "class VssdFtl:\n"
                "    def write_span(self, lpns):\n"
                "        return pick_block(lpns)\n"
            ),
            "src/repro/ssd/alloc.py": (
                "def pick_block(lpns):\n"
                "    out = None\n"
                "    for lpn in lpns:\n"
                "        out = {\"lpn\": lpn}\n"
                "    return out\n"
            ),
        }
        hits = findings_for(sources, "hotpath-alloc")
        assert len(hits) == 1
        assert hits[0].path == "src/repro/ssd/alloc.py"

    def test_clean_allocation_outside_loop(self):
        sources = {
            "src/repro/ssd/ftl.py": (
                "class VssdFtl:\n"
                "    def write_span(self, lpns):\n"
                "        pages = [p for p in lpns]\n"
                "        total = 0\n"
                "        for page in pages:\n"
                "            total += page\n"
                "        return total\n"
            ),
        }
        assert "hotpath-alloc" not in rules_hit(sources)

    def test_clean_cold_function(self):
        sources = {
            "src/repro/harness/report.py": (
                "def render(rows):\n"
                "    out = []\n"
                "    for row in rows:\n"
                "        out.append({\"row\": row})\n"
                "    return out\n"
            ),
        }
        assert "hotpath-alloc" not in rules_hit(sources)


# ----------------------------------------------------------------------
# digest-contract
# ----------------------------------------------------------------------
MONITOR_STUB = """\
class WindowStats:
    pass

class VssdMonitor:
    def __init__(self):
        self.window_history = []

    def snapshot_window(self):
        self.window_history.append(WindowStats())
"""


class TestDigestContract:
    def test_flags_windowstats_outside_row_builders(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/rl/hack.py": (
                "from repro.core.monitor import WindowStats\n"
                "\n"
                "def fake_row():\n"
                "    return WindowStats()\n"
            ),
        }
        hits = findings_for(sources, "digest-contract")
        assert len(hits) == 1
        assert hits[0].path == "src/repro/rl/hack.py"

    def test_flags_history_mutation_outside_monitor(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/harness/patch.py": (
                "def drop_warmup(monitor):\n"
                "    monitor.window_history.clear()\n"
            ),
        }
        assert "digest-contract" in rules_hit(sources)

    def test_flags_history_store_outside_monitor(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/harness/patch.py": (
                "def reset(monitor):\n"
                "    monitor.window_history = []\n"
            ),
        }
        assert "digest-contract" in rules_hit(sources)

    def test_clean_fast_env_builds_rows(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/core/fast_env.py": (
                "from repro.core.monitor import WindowStats\n"
                "\n"
                "def build_row():\n"
                "    return WindowStats()\n"
            ),
        }
        assert "digest-contract" not in rules_hit(sources)

    def test_clean_reads_anywhere(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/harness/report.py": (
                "def rows(monitor):\n"
                "    return list(monitor.window_history)\n"
            ),
        }
        assert "digest-contract" not in rules_hit(sources)


# ----------------------------------------------------------------------
# suppressions apply to project-rule findings too
# ----------------------------------------------------------------------
class TestProjectSuppression:
    def test_suppressed_project_finding(self):
        sources = {
            "src/repro/core/monitor.py": MONITOR_STUB,
            "src/repro/harness/patch.py": (
                "def drop_warmup(monitor):\n"
                "    monitor.window_history.clear()"
                "  # fleetlint: disable=digest-contract  fixture exercising"
                " suppression routing\n"
            ),
        }
        report = lint_sources(sources, rules=["digest-contract"])
        assert not report.findings
        assert len(report.suppressed) == 1
