"""Determinism sanitizer: trace plumbing and divergence localization.

The headline property detsan exists for: when nondeterminism is
*injected* into one of two otherwise-identical runs, ``compare`` must
name the first divergent (subsystem, window) — not just "digest
mismatch" at the end.
"""

import pytest

from repro.analysis.detsan import (
    DetsanRecorder,
    DetsanTrace,
    compare,
    detsan_enabled,
    write_traces,
)
from repro.config import RLConfig, SSDConfig
from repro.harness import Experiment, VssdPlan

FAST = SSDConfig(
    num_channels=4,
    chips_per_channel=2,
    blocks_per_chip=16,
    pages_per_block=32,
    min_superblock_blocks=4,
)


def _experiment(seed=7):
    rl = RLConfig(decision_interval_s=0.5, batch_size=8)
    plans = [VssdPlan("ycsb"), VssdPlan("terasort")]
    return Experiment(plans, "ssdkeeper", ssd_config=FAST, rl_config=rl, seed=seed)


def _record(recorder, seed=7):
    exp = _experiment(seed=seed)
    exp.run(2.0, 0.5, detsan=recorder)
    return recorder.trace


class _PerturbingRecorder(DetsanRecorder):
    """Injects a perturbation just before checkpointing one window."""

    def __init__(self, target_window, perturb):
        super().__init__(label="perturbed")
        self._target = target_window
        self._perturb = perturb

    def checkpoint(self, window, experiment):
        if window == self._target:
            self._perturb(experiment)
        super().checkpoint(window, experiment)


# ----------------------------------------------------------------------
# trace container
# ----------------------------------------------------------------------
class TestTrace:
    def test_round_trip(self):
        trace = DetsanTrace(label="cell/a")
        trace.add(0, 500000.0, "engine", "aaaa")
        trace.add(0, 500000.0, "rng:workload", "bbbb")
        trace.add(1, 1000000.0, "engine", "cccc")
        again = DetsanTrace.from_bytes(trace.to_bytes())
        assert again.label == "cell/a"
        assert again.checkpoints == trace.checkpoints

    def test_version_gate(self):
        bad = b'{"version": 99, "label": "", "checkpoints": []}'
        with pytest.raises(ValueError, match="version"):
            DetsanTrace.from_bytes(bad)

    def test_windows_and_sections(self):
        trace = DetsanTrace()
        trace.add(0, 1.0, "engine", "x")
        trace.add(0, 1.0, "rng:a", "y")
        trace.add(1, 2.0, "engine", "z")
        assert trace.windows() == [0, 1]
        assert set(trace.sections_at(0)) == {"engine", "rng:a"}

    def test_save_load(self, tmp_path):
        trace = DetsanTrace(label="t")
        trace.add(0, 1.0, "engine", "x")
        path = str(tmp_path / "t.detsan.json")
        trace.save(path)
        assert DetsanTrace.load(path).checkpoints == trace.checkpoints

    def test_write_traces_sanitizes_cell_ids(self, tmp_path):
        paths = write_traces({"a+b/pol/s0": b"{}"}, str(tmp_path))
        assert paths == [str(tmp_path / "a+b_pol_s0.detsan.json")]
        assert (tmp_path / "a+b_pol_s0.detsan.json").read_bytes() == b"{}"


# ----------------------------------------------------------------------
# compare semantics
# ----------------------------------------------------------------------
class TestCompare:
    def _pair(self):
        a, b = DetsanTrace(label="a"), DetsanTrace(label="b")
        for trace in (a, b):
            trace.add(0, 1.0, "engine", "e0")
            trace.add(0, 1.0, "rng:w", "r0")
            trace.add(1, 2.0, "engine", "e1")
            trace.add(1, 2.0, "rng:w", "r1")
        return a, b

    def test_identical_traces(self):
        a, b = self._pair()
        assert compare(a, b) is None

    def test_first_divergent_window_wins(self):
        a, b = self._pair()
        b.checkpoints[2] = type(b.checkpoints[2])(1, 2.0, "engine", "DIFF")
        divergence = compare(a, b)
        assert divergence.window == 1
        assert divergence.sections == ("engine",)
        assert "window 1" in divergence.render()

    def test_multiple_sections_reported_sorted(self):
        a, b = self._pair()
        b.checkpoints[0] = type(b.checkpoints[0])(0, 1.0, "engine", "X")
        b.checkpoints[1] = type(b.checkpoints[1])(0, 1.0, "rng:w", "Y")
        assert compare(a, b).sections == ("engine", "rng:w")

    def test_truncated_trace_is_a_divergence(self):
        a, b = self._pair()
        b.checkpoints = b.checkpoints[:2]  # b ends after window 0
        divergence = compare(a, b)
        assert divergence is not None
        assert divergence.window == 1

    def test_one_sided_section_is_a_divergence(self):
        a, b = self._pair()
        b.add(1, 2.0, "ftl:x", "f")  # extra section on one side only
        assert compare(a, b).sections == ("ftl:x",)


# ----------------------------------------------------------------------
# recording + injected-nondeterminism localization
# ----------------------------------------------------------------------
class TestLocalization:
    def test_identical_runs_have_identical_traces(self):
        a = _record(DetsanRecorder(label="a"))
        b = _record(DetsanRecorder(label="b"))
        assert len(a.windows()) >= 3
        assert {"engine"} <= set(a.sections_at(0))
        assert any(s.startswith("rng:") for s in a.sections_at(0))
        assert any(s.startswith("ftl:") for s in a.sections_at(0))
        assert any(s.startswith("telemetry:") for s in a.sections_at(0))
        assert compare(a, b) is None

    def test_perturbed_rng_stream_is_localized(self):
        drawn = {}

        def draw_from_stream(experiment):
            name = sorted(experiment.streams.detsan_states())[0]
            drawn["name"] = name
            experiment.streams.get(name).random()  # one stolen draw

        clean = _record(DetsanRecorder(label="clean"))
        dirty = _record(_PerturbingRecorder(2, draw_from_stream))
        divergence = compare(clean, dirty)
        assert divergence is not None
        assert divergence.window == 2
        assert divergence.sections == (f"rng:{drawn['name']}",)

    def test_injected_event_is_localized_to_the_engine(self):
        def schedule_phantom(experiment):
            # Far past the end of the run: never fires, but sits in the
            # pending heap from window 1 on.
            experiment.virt.sim.schedule(1e9, lambda: None)

        clean = _record(DetsanRecorder(label="clean"))
        dirty = _record(_PerturbingRecorder(1, schedule_phantom))
        divergence = compare(clean, dirty)
        assert divergence is not None
        assert divergence.window == 1
        assert divergence.sections == ("engine",)

    def test_different_seeds_diverge_immediately(self):
        a = _record(DetsanRecorder(label="s7"), seed=7)
        b = _record(DetsanRecorder(label="s8"), seed=8)
        divergence = compare(a, b)
        assert divergence is not None
        assert divergence.window == 0


# ----------------------------------------------------------------------
# env-var gate
# ----------------------------------------------------------------------
class TestEnabledFlag:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DETSAN", raising=False)
        assert not detsan_enabled()
        monkeypatch.setenv("REPRO_DETSAN", "0")
        assert not detsan_enabled()

    def test_on_when_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETSAN", "1")
        assert detsan_enabled()

    def test_experiment_records_nothing_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_DETSAN", raising=False)
        exp = _experiment()
        exp.run(1.0, 0.5)
        assert exp.detsan is None
