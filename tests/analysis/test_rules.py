"""Fixture-driven tests: each fleetlint rule on flagged and clean snippets.

Every rule gets at least one snippet it must flag and one clean snippet
it must stay silent on.  Snippets lint as if they lived in the
deterministic core (``lint_source`` defaults to a path under
``src/repro/sim/``) unless a host-facing path is passed explicitly.
"""

from repro.analysis import lint_source


def rules_hit(source, **kwargs):
    return {f.rule for f in lint_source(source, **kwargs).findings}


# ----------------------------------------------------------------------
# sim-wall-clock
# ----------------------------------------------------------------------
class TestSimWallClock:
    def test_flags_time_time_in_core(self):
        src = "import time\nnow = time.time()\n"
        assert "sim-wall-clock" in rules_hit(src)

    def test_flags_perf_counter_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert "sim-wall-clock" in rules_hit(src)

    def test_flags_datetime_now(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert "sim-wall-clock" in rules_hit(src)

    def test_clean_simulated_clock(self):
        src = "def advance(sim):\n    return sim.now + 5.0\n"
        assert "sim-wall-clock" not in rules_hit(src)

    def test_allowed_in_host_facing_package(self):
        src = "import time\nstarted = time.time()\n"
        hits = rules_hit(src, path="src/repro/harness/timing.py")
        assert "sim-wall-clock" not in hits

    def test_allowed_in_cli(self):
        src = "import time\nstarted = time.perf_counter()\n"
        assert "sim-wall-clock" not in rules_hit(src, path="src/repro/cli.py")


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_flags_stdlib_random(self):
        src = "import random\nx = random.random()\n"
        assert "unseeded-rng" in rules_hit(src)

    def test_flags_np_random_module_call(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert "unseeded-rng" in rules_hit(src)

    def test_flags_seed_arithmetic(self):
        src = "import numpy as np\nrng = np.random.default_rng(seed + 1)\n"
        assert "unseeded-rng" in rules_hit(src)

    def test_clean_default_rng_from_plain_seed(self):
        src = "import numpy as np\nrng = np.random.default_rng(seed)\n"
        assert "unseeded-rng" not in rules_hit(src)

    def test_clean_seed_sequence_spawn(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])\n"
        )
        assert "unseeded-rng" not in rules_hit(src)

    def test_generator_method_calls_are_fine(self):
        src = "def draw(rng):\n    return rng.random()\n"
        assert "unseeded-rng" not in rules_hit(src)


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_flags_set_literal_iteration(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert "unordered-iteration" in rules_hit(src)

    def test_flags_tracked_set_name(self):
        src = "seen = set()\nseen.add(1)\nfor x in seen:\n    pass\n"
        assert "unordered-iteration" in rules_hit(src)

    def test_flags_keys_iteration(self):
        src = "d = {}\nfor k in d.keys():\n    pass\n"
        assert "unordered-iteration" in rules_hit(src)

    def test_clean_sorted_set(self):
        src = "seen = set()\nfor x in sorted(seen):\n    pass\n"
        assert "unordered-iteration" not in rules_hit(src)

    def test_clean_dict_iteration(self):
        # Dicts preserve insertion order; iterating one directly is fine.
        src = "d = {}\nfor k in d:\n    pass\n"
        assert "unordered-iteration" not in rules_hit(src)


# ----------------------------------------------------------------------
# unit-mixing
# ----------------------------------------------------------------------
class TestUnitMixing:
    def test_flags_bytes_plus_pages(self):
        src = "def f(total_bytes, used_pages):\n    return total_bytes + used_pages\n"
        assert "unit-mixing" in rules_hit(src)

    def test_flags_us_vs_s_compare(self):
        src = "def late(deadline_us, now_s):\n    return now_s > deadline_us\n"
        assert "unit-mixing" in rules_hit(src)

    def test_clean_same_unit(self):
        src = "def f(a_bytes, b_bytes):\n    return a_bytes + b_bytes\n"
        assert "unit-mixing" not in rules_hit(src)

    def test_clean_conversion_via_multiplication(self):
        # A multiply is a unit conversion; the checker does not propagate.
        src = "def f(time_s):\n    return time_s * 1_000_000\n"
        assert "unit-mixing" not in rules_hit(src)

    def test_flags_bare_quantity_param(self):
        src = "def wait(timeout):\n    return timeout\n"
        assert "unit-mixing" in rules_hit(src)

    def test_clean_suffixed_quantity_param(self):
        src = "def wait(timeout_us):\n    return timeout_us\n"
        assert "unit-mixing" not in rules_hit(src)

    def test_private_function_params_exempt(self):
        src = "def _wait(timeout):\n    return timeout\n"
        assert "unit-mixing" not in rules_hit(src)


# ----------------------------------------------------------------------
# float-time-equality
# ----------------------------------------------------------------------
class TestFloatTimeEquality:
    def test_flags_timestamp_equality(self):
        src = "def due(now_us, deadline_us):\n    return now_us == deadline_us\n"
        assert "float-time-equality" in rules_hit(src)

    def test_flags_not_equal(self):
        src = "def pending(start_time, end_time):\n    return start_time != end_time\n"
        assert "float-time-equality" in rules_hit(src)

    def test_clean_ordering_compare(self):
        src = "def due(now_us, deadline_us):\n    return now_us >= deadline_us\n"
        assert "float-time-equality" not in rules_hit(src)

    def test_clean_non_time_equality(self):
        src = "def same(count_a, count_b):\n    return count_a == count_b\n"
        assert "float-time-equality" not in rules_hit(src)


# ----------------------------------------------------------------------
# mutable-default-arg
# ----------------------------------------------------------------------
class TestMutableDefaultArg:
    def test_flags_list_default(self):
        src = "def f(items=[]):\n    return items\n"
        assert "mutable-default-arg" in rules_hit(src)

    def test_flags_dict_constructor_default(self):
        src = "def f(opts=dict()):\n    return opts\n"
        assert "mutable-default-arg" in rules_hit(src)

    def test_flags_kwonly_default(self):
        src = "def f(*, seen=set()):\n    return seen\n"
        assert "mutable-default-arg" in rules_hit(src)

    def test_clean_none_default(self):
        src = "def f(items=None):\n    return items or []\n"
        assert "mutable-default-arg" not in rules_hit(src)

    def test_flags_outside_core_too(self):
        src = "def f(items=[]):\n    return items\n"
        hits = rules_hit(src, path="src/repro/harness/report.py")
        assert "mutable-default-arg" in hits


# ----------------------------------------------------------------------
# Cross-cutting behavior
# ----------------------------------------------------------------------
class TestFindingShape:
    def test_findings_carry_location_and_severity(self):
        src = "import time\nnow = time.time()\n"
        findings = lint_source(src).findings
        (finding,) = [f for f in findings if f.rule == "sim-wall-clock"]
        assert finding.line == 2
        assert finding.severity.value == "error"
        assert "time.time" in finding.message

    def test_rule_subset_restricts_checks(self):
        src = "import time\nnow = time.time()\nx = {1}\nfor i in x:\n    pass\n"
        findings = lint_source(src, rules=["unordered-iteration"]).findings
        assert {f.rule for f in findings} == {"unordered-iteration"}
