"""Engine behavior: suppressions, baseline round-trip, JSON output, CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    Baseline,
    lint_paths,
    lint_source,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

# mutable-default-arg applies in every package, so this snippet is
# flagged regardless of the path it is linted under.
FLAGGED = "def f(items=[]):\n    return items\n"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_suppression_silences_its_line(self):
        src = (
            "import time\n"
            "now = time.time()  # fleetlint: disable=sim-wall-clock  test fixture\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["sim-wall-clock"]

    def test_standalone_suppression_covers_next_line(self):
        src = (
            "import time\n"
            "# fleetlint: disable=sim-wall-clock  test fixture\n"
            "now = time.time()\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["sim-wall-clock"]

    def test_suppression_is_rule_specific(self):
        src = (
            "import time\n"
            "now = time.time()  # fleetlint: disable=unseeded-rng  wrong rule\n"
        )
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["sim-wall-clock"]

    def test_missing_reason_is_an_error(self):
        src = (
            "import time\n"
            "now = time.time()  # fleetlint: disable=sim-wall-clock\n"
        )
        report = lint_source(src)
        rules = {f.rule for f in report.findings}
        assert "bad-suppression" in rules

    def test_unknown_rule_is_an_error(self):
        src = "x = 1  # fleetlint: disable=no-such-rule  because\n"
        report = lint_source(src)
        assert {f.rule for f in report.findings} == {"bad-suppression"}

    def test_marker_in_string_literal_is_ignored(self):
        src = 'msg = "# fleetlint: disable=bogus"\n'
        report = lint_source(src)
        assert not report.findings

    def test_multi_rule_suppression(self):
        src = (
            "import time, random\n"
            "x = time.time() + random.random()"
            "  # fleetlint: disable=sim-wall-clock,unseeded-rng  fixture\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert {f.rule for f in report.suppressed} == {
            "sim-wall-clock",
            "unseeded-rng",
        }


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(FLAGGED, path="src/repro/harness/snip.py").findings
        assert findings
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(baseline)
        assert all(loaded.contains(f) for f in findings)

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_fingerprint_survives_line_moves(self):
        before = lint_source(FLAGGED, path="src/repro/harness/snip.py").findings
        shifted = "\n\n\ndef f(items=[]):\n    return items\n"
        after = lint_source(shifted, path="src/repro/harness/snip.py").findings
        assert before[0].fingerprint() == after[0].fingerprint()
        assert before[0].line != after[0].line

    def test_baselined_findings_do_not_fail(self, tmp_path):
        target = tmp_path / "snip.py"
        target.write_text(FLAGGED)
        # Outside the repo root, the path stays absolute and is not a core
        # package, so a baseline entry is allowed to silence it.
        first = lint_paths([target], root=tmp_path)
        assert first.findings and first.exit_code() == 1
        baseline = Baseline.from_findings(first.findings)
        second = lint_paths([target], baseline=baseline, root=tmp_path)
        assert not second.findings
        assert second.baselined
        assert second.exit_code() == 0

    def test_core_baseline_entries_fail_the_build(self, tmp_path):
        findings = lint_source(FLAGGED).findings  # default path is sim/ => core
        baseline = Baseline.from_findings(findings)
        assert baseline.core_entries()
        report = lint_paths([tmp_path], baseline=baseline, root=tmp_path)
        assert report.exit_code() == 1

    def test_write_baseline_then_clean_run(self, tmp_path):
        target = tmp_path / "snip.py"
        target.write_text(FLAGGED)
        baseline_path = tmp_path / "baseline.json"
        wrote = run_lint(
            [target], baseline_path=baseline_path, write_baseline=True
        )
        assert wrote == 0 and baseline_path.exists()
        # The baselined finding lives outside the deterministic core
        # (absolute tmp path), so the follow-up run is clean.
        assert run_lint([target], baseline_path=baseline_path) == 0


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
class TestOutput:
    def test_json_document_shape(self, tmp_path):
        target = tmp_path / "snip.py"
        target.write_text(FLAGGED)
        report = lint_paths([target], root=tmp_path)
        doc = report.to_json()
        assert doc["version"] == 1
        assert doc["files"] == 1
        assert doc["summary"]["errors"] == len(report.errors)
        (entry,) = doc["findings"]
        assert entry["rule"] == "mutable-default-arg"
        assert entry["line"] == 1
        assert entry["fingerprint"]
        json.dumps(doc)  # must be serializable

    def test_text_summary_line(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        report = lint_paths([target], root=tmp_path)
        text = report.render_text()
        assert "fleetlint: 1 files, 0 errors, 0 warnings" in text

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        report = lint_paths([target], root=tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code() == 1


# ----------------------------------------------------------------------
# Self-lint regression (satellite: the repo itself stays clean)
# ----------------------------------------------------------------------
class TestSelfLint:
    def test_repo_lints_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=Baseline.load(REPO_ROOT / ".fleetlint-baseline.json"),
            root=REPO_ROOT,
        )
        assert report.exit_code(strict=True) == 0, report.render_text()

    def test_baseline_has_no_core_entries(self):
        baseline = Baseline.load(REPO_ROOT / ".fleetlint-baseline.json")
        assert baseline.core_entries() == []

    def test_every_suppression_has_a_reason(self):
        # parse_suppressions already turns reasonless markers into
        # bad-suppression errors; assert directly so the contract is
        # explicit even if the engine policy ever loosens.
        from repro.analysis import parse_suppressions

        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            lines = path.read_text().splitlines()
            markers = parse_suppressions(str(path), lines)
            assert not markers.problems, [f.render() for f in markers.problems]
            for suppression in markers.suppressions:
                assert suppression.reason.strip(), (
                    f"{path}:{suppression.line} suppression without a reason"
                )

    def test_cli_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src/repro"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fleetlint:" in proc.stdout


# ----------------------------------------------------------------------
# Multi-line statement suppression spans
# ----------------------------------------------------------------------
class TestSuppressionSpans:
    def test_trailing_marker_covers_whole_statement(self):
        # The finding fires on line 3 (the time.time() call); the marker
        # sits on line 2, the first physical line of the statement.
        src = (
            "import time\n"
            "value = (  # fleetlint: disable=sim-wall-clock  span fixture\n"
            "    time.time()\n"
            ")\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["sim-wall-clock"]

    def test_marker_on_last_line_covers_earlier_lines(self):
        src = (
            "import time\n"
            "value = (\n"
            "    time.time()\n"
            ")  # fleetlint: disable=sim-wall-clock  span fixture\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["sim-wall-clock"]

    def test_span_is_the_smallest_containing_statement(self):
        # The marker is on the body assignment inside the with-block; it
        # must not bleed over to the sibling statement below.
        src = (
            "import time\n"
            "with open('x') as fh:\n"
            "    a = (\n"
            "        time.time()\n"
            "    )  # fleetlint: disable=sim-wall-clock  span fixture\n"
            "    b = time.time()\n"
        )
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["sim-wall-clock"]
        assert [f.line for f in report.findings] == [6]
        assert [f.line for f in report.suppressed] == [4]

    def test_standalone_marker_covers_following_statement(self):
        src = (
            "import time\n"
            "# fleetlint: disable=sim-wall-clock  span fixture\n"
            "value = (\n"
            "    time.time()\n"
            ")\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["sim-wall-clock"]


# ----------------------------------------------------------------------
# --changed-only
# ----------------------------------------------------------------------
class TestChangedOnly:
    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
            },
        )

    def test_lints_only_git_dirty_files(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        (src / "clean.py").write_text(FLAGGED)
        (src / "dirty.py").write_text("x = 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        (src / "dirty.py").write_text(FLAGGED)

        full = lint_paths([tmp_path / "src"], root=tmp_path)
        assert full.files == 2
        changed = lint_paths([tmp_path / "src"], root=tmp_path, changed_only=True)
        assert changed.files == 1
        assert {f.path for f in changed.findings} == {"src/repro/sim/dirty.py"}

    def test_untracked_files_count_as_changed(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        (src / "old.py").write_text("x = 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        (src / "new.py").write_text(FLAGGED)

        changed = lint_paths([tmp_path / "src"], root=tmp_path, changed_only=True)
        assert changed.files == 1
        assert {f.path for f in changed.findings} == {"src/repro/sim/new.py"}

    def test_outside_git_falls_back_to_everything(self, tmp_path, monkeypatch):
        # /tmp is not a repo; _changed_files must return None and the
        # lint must cover all files rather than silently skipping them.
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        (src / "a.py").write_text(FLAGGED)
        (src / "b.py").write_text("x = 1\n")
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-git-dir"))
        report = lint_paths([tmp_path / "src"], root=tmp_path, changed_only=True)
        assert report.files == 2
