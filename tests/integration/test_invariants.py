"""Cross-module invariants under randomized traffic (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import SSDConfig
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer
from repro.virt.actions import HarvestAction, MakeHarvestableAction


def _small_world():
    config = SSDConfig(
        num_channels=4, chips_per_channel=2, blocks_per_chip=8,
        pages_per_block=16, min_superblock_blocks=2,
    )
    virt = StorageVirtualizer(config=config)
    a = virt.create_vssd("a", [0, 1])
    b = virt.create_vssd("b", [2, 3])
    return config, virt, a, b


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 1),          # vssd index
            st.booleans(),              # read?
            st.integers(0, 400),        # lpn
            st.integers(1, 4),          # pages
        ),
        min_size=1,
        max_size=200,
    )
)
def test_every_submitted_request_completes_exactly_once(ops):
    """Conservation: submissions == completions, no double-delivery."""
    config, virt, a, b = _small_world()
    seen = {}
    virt.dispatcher.add_completion_callback(
        lambda r: seen.__setitem__(r.req_id, seen.get(r.req_id, 0) + 1)
    )
    submitted = 0
    for vssd_index, is_read, lpn, pages in ops:
        vssd = (a, b)[vssd_index]
        virt.dispatcher.submit(
            IoRequest(
                vssd.vssd_id,
                "read" if is_read else "write",
                lpn,
                pages,
                config.page_size,
                virt.sim.now,
            )
        )
        submitted += 1
    virt.sim.run()
    assert len(seen) == submitted
    assert all(count == 1 for count in seen.values())


@settings(max_examples=10, deadline=None)
@given(
    actions=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 2)),
        min_size=1,
        max_size=25,
    ),
    writes=st.integers(50, 300),
)
def test_block_ownership_conserved_under_harvest_churn(actions, writes):
    """Every block always has exactly one owner; none leak or duplicate."""
    config, virt, a, b = _small_world()
    per = config.channel_write_bandwidth_mbps
    rng = np.random.default_rng(0)
    vssds = (a, b)
    for who, what in actions:
        vssd = vssds[who]
        if what == 0:
            virt.admission.submit(MakeHarvestableAction(vssd.vssd_id, per + 1))
        elif what == 1:
            virt.admission.submit(HarvestAction(vssd.vssd_id, per + 1))
        else:
            virt.admission.submit(MakeHarvestableAction(vssd.vssd_id, 1e-9))
        virt.admission.process_batch()
        virt.gsb_manager.pump_reclaims()
        for _ in range(writes // len(actions) + 1):
            vssds[int(rng.integers(2))].ftl.write_page(int(rng.integers(0, 300)))
    owners = {}
    for channel in virt.ssd.channels:
        for block in channel.blocks:
            assert block.owner in (a.vssd_id, b.vssd_id)
            owners[block.block_id] = block.owner
    assert len(owners) == config.total_blocks
    # Every mapped page of both tenants resolves to its own data.
    for vssd in vssds:
        for lpn, pointer in vssd.ftl.page_map.items():
            assert pointer.block.page_lpns[pointer.page] == lpn
            assert pointer.block.writer == vssd.vssd_id


def test_latency_never_below_service_floor():
    """No request completes faster than its minimal physical service."""
    config, virt, a, _b = _small_world()
    latencies = []
    virt.dispatcher.add_completion_callback(
        lambda r: latencies.append((r.op, r.latency_us))
    )
    for i in range(50):
        virt.dispatcher.submit(
            IoRequest(a.vssd_id, "write", i, 1, config.page_size, virt.sim.now)
        )
    virt.sim.run()
    write_floor = config.bus_transfer_us + config.page_write_us
    for op, latency in latencies:
        assert latency >= write_floor - 1e-6


def test_simulated_time_monotonic_through_full_stack():
    """Completion timestamps are non-decreasing per vSSD FIFO stream."""
    config, virt, a, _b = _small_world()
    completions = []
    virt.dispatcher.add_completion_callback(
        lambda r: completions.append(r.complete_time)
    )
    for i in range(100):
        virt.dispatcher.submit(
            IoRequest(a.vssd_id, "write", i % 64, 1, config.page_size, virt.sim.now)
        )
    virt.sim.run()
    # Single-vSSD, single-page FIFO writes complete in order.
    assert completions == sorted(completions)


def test_valid_pages_equal_mapped_pages_device_wide():
    """Sum of block valid counts equals sum of FTL map sizes, always."""
    config, virt, a, b = _small_world()
    rng = np.random.default_rng(1)
    per = config.channel_write_bandwidth_mbps
    virt.gsb_manager.make_harvestable(a, per + 1)
    virt.gsb_manager.harvest(b, per + 1)
    for _ in range(600):
        vssd = (a, b)[int(rng.integers(2))]
        vssd.ftl.write_page(int(rng.integers(0, 250)))
    total_valid = sum(
        block.valid_count for ch in virt.ssd.channels for block in ch.blocks
    )
    total_mapped = a.ftl.mapped_pages() + b.ftl.mapped_pages()
    assert total_valid == total_mapped
