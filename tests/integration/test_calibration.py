"""Fast-env <-> DES calibration: the transfer property.

The pre-trained policy only transfers onto the discrete-event substrate
if the fast environment produces *states on the same scale* as the DES.
These tests run the same collocation in both worlds and compare the
feature statistics the policy actually consumes.
"""

import numpy as np
import pytest

from repro.config import CLUSTER_ALPHAS, RLConfig, SSDConfig
from repro.core.fast_env import FastFleetEnv, FastVssdSpec
from repro.core.monitor import VssdMonitor
from repro.sched.request import Priority
from repro.virt import StorageVirtualizer
from repro.workloads import WorkloadModel, get_spec, make_driver


@pytest.fixture(scope="module")
def des_windows():
    """Window stats from a DES run: vdi-web + batchanalytics, HW-isolated.

    vdi-web is the anchor workload the fast env's latency demand is
    calibrated to (see FastFleetEnv._demand_mbps).
    """
    # The fast env is calibrated for the default 4-chip channel pipeline;
    # only capacity is scaled down here (fewer blocks) for test speed.
    config = SSDConfig(
        num_channels=8, chips_per_channel=4, blocks_per_chip=32, pages_per_block=32
    )
    virt = StorageVirtualizer(config=config)
    monitors = {}
    rng = np.random.default_rng(0)
    for name, channels in (("vdi-web", [0, 1, 2, 3]), ("batchanalytics", [4, 5, 6, 7])):
        vssd = virt.create_vssd(name, channels, slo_latency_us=1500.0)
        pages = sum(vssd.ftl._own_blocks_per_channel.values()) * config.pages_per_block
        vssd.ftl.warm_fill(range(int(pages * 0.5)))
        model = WorkloadModel(get_spec(name), rng, int(pages * 0.4))
        driver = make_driver(model, vssd.vssd_id, virt.sim, virt.dispatcher.submit, config.page_size)
        virt.dispatcher.add_completion_callback(
            lambda r, d=driver, vid=vssd.vssd_id: d.on_complete(r) if r.vssd_id == vid else None
        )
        monitor = VssdMonitor(vssd)
        virt.dispatcher.add_completion_callback(monitor.on_complete)
        monitors[name] = (vssd, monitor)
        driver.start()
    windows = {name: [] for name in monitors}
    for t in np.arange(2.0, 12.1, 2.0):
        virt.sim.run_until_seconds(float(t))
        for name, (vssd, monitor) in monitors.items():
            windows[name].append(monitor.snapshot_window(float(t)))
    guar = {
        name: vssd.num_channels * config.channel_write_bandwidth_mbps
        for name, (vssd, _monitor) in monitors.items()
    }
    return windows, guar


@pytest.fixture(scope="module")
def fast_windows():
    """Window stats from the fast env: same collocation, no actions."""
    config = SSDConfig(num_channels=8)
    specs = [
        FastVssdSpec(get_spec("vdi-web"), channels=4, alpha=CLUSTER_ALPHAS["LC-1"]),
        FastVssdSpec(get_spec("batchanalytics"), channels=4, alpha=0.0),
    ]
    env = FastFleetEnv(specs, RLConfig(), config, np.random.default_rng(1), episode_windows=10)
    env.offered[:] = 0
    env.harvested[:] = 0
    env.priority = [Priority.MEDIUM] * 2
    noop = next(
        i for i in range(len(env.action_space))
        if env.action_space.describe(i) == "Set_Priority(MEDIUM)"
    )
    windows = {"vdi-web": [], "batchanalytics": []}
    env._states(env._simulate_window())
    for _ in range(6):
        _s, _r, _d, info = env.step({0: noop, 1: noop})
        windows["vdi-web"].append(info["stats"][0])
        windows["batchanalytics"].append(info["stats"][1])
    guar = {name: 4 * config.channel_write_bandwidth_mbps for name in windows}
    return windows, guar


def _mean_bw_over_guar(windows, guar, name):
    return float(np.mean([w.avg_bw_mbps for w in windows[name]])) / guar[name]


def test_bandwidth_feature_scales_match(des_windows, fast_windows):
    """bw/guar — the policy's first feature — matches within ~2.5x for
    both tenant types (same order of magnitude, same ordering)."""
    for name in ("vdi-web", "batchanalytics"):
        des = _mean_bw_over_guar(*des_windows, name)
        fast = _mean_bw_over_guar(*fast_windows, name)
        assert 0.4 < fast / des < 2.5, (name, des, fast)
    # And BI clearly exceeds LC in both worlds.
    for windows, guar in (des_windows, fast_windows):
        assert _mean_bw_over_guar(windows, guar, "batchanalytics") > \
            _mean_bw_over_guar(windows, guar, "vdi-web")


def test_queue_delay_ordering_matches(des_windows, fast_windows):
    """Closed-loop tenants show orders-of-magnitude larger queue delay
    than open-loop tenants in both environments."""
    for windows, _guar in (des_windows, fast_windows):
        lc = np.mean([w.queue_delay_us for w in windows["vdi-web"]])
        bi = np.mean([w.queue_delay_us for w in windows["batchanalytics"]])
        assert bi > 5 * lc, (lc, bi)


def test_queue_delay_scale_overlaps(des_windows, fast_windows):
    """BI queue delay: both worlds in the same decade (tens of ms)."""
    des = np.mean([w.queue_delay_us for w in des_windows[0]["batchanalytics"]])
    fast = np.mean([w.queue_delay_us for w in fast_windows[0]["batchanalytics"]])
    assert 0.1 < fast / des < 10.0, (des, fast)


def test_rw_ratio_matches(des_windows, fast_windows):
    for name in ("vdi-web", "batchanalytics"):
        des = np.mean([w.rw_ratio for w in des_windows[0][name]])
        fast = np.mean([w.rw_ratio for w in fast_windows[0][name]])
        assert abs(des - fast) < 0.15, (name, des, fast)
