"""End-to-end integration: the full FleetIO stack on a small device."""

import numpy as np
import pytest

from repro.config import RLConfig, SSDConfig
from repro.core.actionspace import ActionSpace
from repro.core.controller import FleetIoController
from repro.harness import Experiment, plans_for_pair
from repro.rl import PolicyValueNet
from repro.sched.request import Priority
from repro.virt import StorageVirtualizer
from repro.virt.actions import HarvestAction, MakeHarvestableAction, SetPriorityAction
from repro.workloads import WorkloadModel, get_spec, make_driver


@pytest.fixture
def fast_config():
    return SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=16,
        pages_per_block=32,
        min_superblock_blocks=4,
    )


def test_full_harvest_cycle_under_live_traffic(fast_config):
    """Offer -> harvest -> write through gSB -> reclaim, with workloads
    running and data integrity preserved throughout."""
    virt = StorageVirtualizer(config=fast_config)
    lat = virt.create_vssd("lat", [0, 1], slo_latency_us=5000.0)
    bw = virt.create_vssd("bw", [2, 3])
    rng = np.random.default_rng(0)
    drivers = []
    for vssd, name in ((lat, "ycsb"), (bw, "batchanalytics")):
        model = WorkloadModel(get_spec(name), rng, 2000)
        driver = make_driver(model, vssd.vssd_id, virt.sim, virt.dispatcher.submit, fast_config.page_size)
        virt.dispatcher.add_completion_callback(
            lambda r, d=driver, vid=vssd.vssd_id: d.on_complete(r) if r.vssd_id == vid else None
        )
        drivers.append(driver)
        driver.start()
    virt.admission.start()
    per = fast_config.channel_write_bandwidth_mbps
    virt.admission.submit(MakeHarvestableAction(lat.vssd_id, per + 1))
    virt.admission.submit(HarvestAction(bw.vssd_id, per + 1))
    virt.admission.submit(SetPriorityAction(lat.vssd_id, Priority.HIGH))
    virt.sim.run_until_seconds(2.0)
    assert bw.harvested_channel_count() == 1
    assert lat.priority is Priority.HIGH
    # Reclaim while traffic continues.
    virt.admission.submit(MakeHarvestableAction(lat.vssd_id, 0.0 + 1e-9))
    virt.sim.run_until_seconds(3.0)
    virt.gsb_manager.pump_reclaims()
    assert bw.harvested_channel_count() == 0
    assert virt.gsb_manager.stats.blocks_returned >= 4
    # Both workloads kept completing.
    assert all(d.completed > 50 for d in drivers)


def test_fleetio_controller_full_loop(fast_config):
    """Controller + random-policy agents drive admission without errors
    and keep crediting rewards."""
    rl = RLConfig(decision_interval_s=0.2, batch_size=8)
    virt = StorageVirtualizer(config=fast_config)
    space = ActionSpace(fast_config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(rl.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(virt, net, rl_config=rl, explore=True, finetune=True)
    rng = np.random.default_rng(1)
    for name, channels, workload in (("lat", [0, 1], "ycsb"), ("bw", [2, 3], "batchanalytics")):
        vssd = virt.create_vssd(name, channels, slo_latency_us=5000.0)
        controller.register_vssd(vssd)
        model = WorkloadModel(get_spec(workload), rng, 2000)
        driver = make_driver(model, vssd.vssd_id, virt.sim, virt.dispatcher.submit, fast_config.page_size)
        virt.dispatcher.add_completion_callback(
            lambda r, d=driver, vid=vssd.vssd_id: d.on_complete(r) if r.vssd_id == vid else None
        )
        driver.start()
    controller.start()
    virt.sim.run_until_seconds(3.0)
    assert controller._window_index >= 14
    for agent in controller.agents.values():
        assert len(agent.rewards_seen) >= 10


def test_comparison_orderings_hold_on_small_device(fast_config):
    """The motivation-study ordering (Fig. 2/3): software isolation gets
    more utilization and worse tails than hardware isolation."""
    plans = plans_for_pair("ycsb", "batchanalytics")
    hw = Experiment(plans, "hardware", ssd_config=fast_config, seed=1).run(
        duration_s=6.0, measure_after_s=1.0
    )
    for plan in plans:
        plan.slo_latency_us = hw.vssd(plan.name).p99_latency_us
    sw = Experiment(plans, "software", ssd_config=fast_config, seed=1).run(
        duration_s=6.0, measure_after_s=1.0
    )
    assert sw.avg_utilization > hw.avg_utilization
    assert sw.vssd("ycsb").p99_latency_us > hw.vssd("ycsb").p99_latency_us
    assert sw.vssd("batchanalytics").mean_bw_mbps > hw.vssd("batchanalytics").mean_bw_mbps


def test_deallocation_under_traffic(fast_config):
    virt = StorageVirtualizer(config=fast_config)
    a = virt.create_vssd("a", [0, 1])
    b = virt.create_vssd("b", [2, 3])
    rng = np.random.default_rng(2)
    model = WorkloadModel(get_spec("ycsb"), rng, 1000)
    driver = make_driver(model, b.vssd_id, virt.sim, virt.dispatcher.submit, fast_config.page_size)
    virt.dispatcher.add_completion_callback(
        lambda r: driver.on_complete(r) if r.vssd_id == b.vssd_id else None
    )
    driver.start()
    virt.sim.run_until_seconds(0.5)
    a.ftl.warm_fill(range(500))
    virt.deallocate_vssd(a.vssd_id)
    virt.offer_placeholder_capacity()
    per = fast_config.channel_write_bandwidth_mbps
    gsb = virt.gsb_manager.harvest(b, per + 1)
    assert gsb is not None
    virt.sim.run_until_seconds(1.5)
    assert driver.completed > 0
