"""Failure injection: capacity pressure, thrashing actions, edge configs."""

import numpy as np
import pytest

from repro.config import SSDConfig
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer
from repro.virt.actions import HarvestAction, MakeHarvestableAction


@pytest.fixture
def fast_config():
    return SSDConfig(
        num_channels=4,
        chips_per_channel=2,
        blocks_per_chip=16,
        pages_per_block=32,
        min_superblock_blocks=4,
    )


def test_offer_denied_under_capacity_pressure(fast_config):
    """A vSSD close to full cannot give blocks away (the 25% floor)."""
    virt = StorageVirtualizer(config=fast_config)
    vssd = virt.create_vssd("full", [0, 1])
    pages = sum(vssd.ftl._own_blocks_per_channel.values()) * fast_config.pages_per_block
    vssd.ftl.warm_fill(range(int(pages * 0.85)))
    per = fast_config.channel_write_bandwidth_mbps
    assert virt.gsb_manager.make_harvestable(vssd, per + 1) is None


def test_action_thrash_does_not_corrupt_state(fast_config):
    """Alternating offer/reclaim/harvest every batch must keep block
    accounting consistent."""
    virt = StorageVirtualizer(config=fast_config)
    a = virt.create_vssd("a", [0, 1])
    b = virt.create_vssd("b", [2, 3])
    per = fast_config.channel_write_bandwidth_mbps
    rng = np.random.default_rng(0)
    for round_idx in range(30):
        offer_bw = float(rng.choice([1e-9, per + 1, 2 * per + 1]))
        virt.admission.submit(MakeHarvestableAction(a.vssd_id, offer_bw))
        virt.admission.submit(HarvestAction(b.vssd_id, per + 1))
        virt.admission.process_batch()
        virt.gsb_manager.pump_reclaims()
        # Writes keep landing wherever legal (working set well under
        # b's 2048-page capacity so GC always has invalid pages to free).
        for i in range(20):
            b.ftl.write_page(int(rng.integers(0, 1200)))
    total_blocks = 4 * fast_config.blocks_per_channel
    accounted = 0
    for channel in virt.ssd.channels:
        for block in channel.blocks:
            assert block.owner in (a.vssd_id, b.vssd_id)
            accounted += 1
    assert accounted == total_blocks
    # Harvester data stays readable.
    for lpn, pointer in b.ftl.page_map.items():
        assert pointer.block.page_lpns[pointer.page] == lpn


def test_harvester_survives_home_capacity_crunch(fast_config):
    """Home reclaims while the harvester's gSB holds live data; the lazy
    path must migrate everything home without data loss."""
    virt = StorageVirtualizer(config=fast_config)
    home = virt.create_vssd("home", [0, 1])
    harvester = virt.create_vssd("harv", [2, 3])
    per = fast_config.channel_write_bandwidth_mbps
    virt.gsb_manager.make_harvestable(home, 2 * per + 1)
    gsb = virt.gsb_manager.harvest(harvester, 2 * per + 1)
    assert gsb is not None
    # Fill the harvester (including the gSB) with data that still fits
    # its own 2048-page capacity once the gSB is reclaimed.
    lpns = list(range(1500))
    for lpn in lpns:
        harvester.ftl.write_page(lpn)
    # Home suddenly needs its space back.
    virt.gsb_manager.reclaim_excess(home, 0)
    virt.gsb_manager.pump_reclaims()
    assert virt.gsb_manager.reclaiming_gsbs() == []
    for lpn in lpns:
        pointer = harvester.ftl.page_location(lpn)
        assert pointer is not None
        assert pointer.block.owner == harvester.vssd_id


def test_failed_request_reported_not_crashed(fast_config):
    """Filling a vSSD beyond capacity marks requests failed instead of
    crashing the dispatcher."""
    virt = StorageVirtualizer(config=fast_config)
    vssd = virt.create_vssd("v", [0])
    total_pages = fast_config.blocks_per_channel * fast_config.pages_per_block
    for i in range(total_pages + 200):
        virt.dispatcher.submit(
            IoRequest(vssd.vssd_id, "write", i, 1, fast_config.page_size, virt.sim.now)
        )
        virt.sim.run(max_events=50)
    virt.sim.run()
    assert virt.dispatcher.failed_requests > 0


def test_single_vssd_whole_device(fast_config):
    """Degenerate collocation: one tenant owning everything still works
    and the multi-agent reward degenerates to Eq. 1."""
    from repro.core.reward import multi_agent_rewards

    virt = StorageVirtualizer(config=fast_config)
    vssd = virt.create_vssd("only", list(range(4)))
    for i in range(500):
        vssd.ftl.write_page(i)
    assert multi_agent_rewards({vssd.vssd_id: 0.42}, 0.6) == {
        vssd.vssd_id: pytest.approx(0.42)
    }


def test_sixteen_tenants_one_channel_each():
    config = SSDConfig(
        num_channels=16, chips_per_channel=2, blocks_per_chip=8, pages_per_block=16
    )
    virt = StorageVirtualizer(config=config)
    for i in range(16):
        vssd = virt.create_vssd(f"v{i}", [i])
        vssd.ftl.write_page(0)
    assert len(virt.vssds) == 16
