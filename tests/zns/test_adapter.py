"""Tests for the zone <-> gSB adapter."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.hbt import HarvestedBlockTable
from repro.virt.gsb import GsbPool
from repro.virt.vssd import Vssd
from repro.zns import ZnsError, ZnsHarvestAdapter, ZonedNamespace, ZoneState, zone_to_gsb


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=3, chips_per_channel=2, blocks_per_chip=8, pages_per_block=8
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    hbt = HarvestedBlockTable()
    # Channels 0-1: a zoned tenant.  Channel 2: a block-interface vSSD.
    ns = ZonedNamespace(ssd, owner_id=100, channel_ids=[0, 1], blocks_per_zone=4)
    ftl = VssdFtl(1, ssd, hbt=hbt)
    ftl.adopt_blocks(ssd.allocate_channels(1, [2]))
    harvester = Vssd(1, "blocky", ftl, [2])
    pool = GsbPool(config.num_channels)
    adapter = ZnsHarvestAdapter(ns, pool, hbt)
    return config, sim, ssd, ns, harvester, pool, adapter


def test_zone_to_gsb_requires_empty(world):
    *_rest, ns, _harvester, _pool, _adapter = world[:4] + world[4:]
    ns = world[3]
    ns.append(0, pages=1)
    with pytest.raises(ZnsError):
        zone_to_gsb(ns.zone(0), home_id=100)


def test_offer_zone_pools_gsb_and_blocks_appends(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    gsb = adapter.offer_zone(0)
    assert pool.available() == 1
    assert ns.zone(0).state is ZoneState.FULL  # lent: host cannot append
    assert all(block.harvested_flag for block in gsb.blocks)
    from repro.zns.zone import ZoneError

    with pytest.raises(ZoneError):
        ns.append(0, pages=1)


def test_offer_empty_zones_bulk(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    offered = adapter.offer_empty_zones(3)
    assert len(offered) == 3
    assert adapter.zones_lent == 3


def test_harvest_installs_region(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    adapter.offer_zone(0)
    gsb = adapter.harvest(harvester)
    assert gsb is not None
    assert gsb.in_use
    channel = ns.zone(0).channel_id
    assert channel in harvester.ftl.write_channels()
    # The harvester's writes can land on the zoned tenant's channel.
    channels = {harvester.ftl.write_page(lpn)[1] for lpn in range(40)}
    assert channel in channels


def test_reclaim_unused_resets_zone(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    gsb = adapter.offer_zone(0)
    adapter.reclaim(gsb)
    assert ns.zone(0).state is ZoneState.EMPTY
    assert pool.available() == 0
    assert adapter.zones_lent == 0
    ns.append(0, pages=1)  # usable again


def test_reclaim_in_use_migrates_and_resets(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    gsb = adapter.offer_zone(0)
    adapter.harvest(harvester)
    lpns = list(range(5000, 5000 + 2 * config.pages_per_block))
    for lpn in lpns:
        harvester.ftl.write_page(lpn)
    adapter.reclaim(gsb, harvester)
    assert ns.zone(0).state is ZoneState.EMPTY
    assert adapter.zones_lent == 0
    assert adapter.zones_returned == 1
    # Harvester data migrated to its own blocks, intact.
    for lpn in lpns:
        pointer = harvester.ftl.page_location(lpn)
        assert pointer is not None
        assert pointer.block.owner == harvester.vssd_id


def test_reclaim_in_use_requires_harvester(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    gsb = adapter.offer_zone(0)
    adapter.harvest(harvester)
    with pytest.raises(ZnsError):
        adapter.reclaim(gsb)


def test_foreign_gsb_rejected(world):
    config, sim, ssd, ns, harvester, pool, adapter = world
    from repro.virt.gsb import GhostSuperblock
    from repro.ssd.geometry import FlashBlock

    foreign = GhostSuperblock(1, [FlashBlock(0, 0, 99, 8)], home_vssd=55)
    with pytest.raises(ZnsError):
        adapter.reclaim(foreign)
