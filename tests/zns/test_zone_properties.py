"""Property tests: the zone state machine under random command traces."""

from hypothesis import given, settings, strategies as st

from repro.ssd.geometry import FlashBlock
from repro.zns.zone import Zone, ZoneError, ZoneState

COMMANDS = ("open", "close", "finish", "reset", "advance")


@settings(max_examples=60, deadline=None)
@given(
    commands=st.lists(
        st.tuples(st.sampled_from(COMMANDS), st.integers(1, 6)),
        min_size=1,
        max_size=60,
    )
)
def test_state_machine_invariants(commands):
    """Whatever command sequence is thrown at a zone:

    * the write pointer stays within [0, capacity];
    * FULL if-and-only-if pointer == capacity (except EMPTY's 0);
    * every block's programmed pages never exceed its capacity;
    * illegal transitions raise ZoneError and change nothing.
    """
    blocks = [FlashBlock(0, i % 2, i, pages_per_block=4) for i in range(3)]
    zone = Zone(0, blocks)
    for command, arg in commands:
        before = (zone.state, zone.write_pointer, zone.resets)
        try:
            if command == "open":
                zone.open()
            elif command == "close":
                zone.close()
            elif command == "finish":
                zone.finish()
            elif command == "reset":
                if zone.state is not ZoneState.EMPTY:
                    # Blocks may hold programmed pages; emulate the
                    # namespace's erase step.
                    for block in zone.blocks:
                        for page, lpn in block.valid_lpns():
                            block.invalidate(page)
                        if not block.is_free:
                            block.erase()
                zone.reset()
            else:
                placements = zone.advance(arg)
                for index, (block, _page) in enumerate(placements):
                    block.program(before[1] + index)
        except ZoneError:
            after = (zone.state, zone.write_pointer, zone.resets)
            assert after == before  # failed commands are side-effect-free
        # Invariants.
        assert 0 <= zone.write_pointer <= zone.capacity_pages
        if zone.state is ZoneState.FULL:
            assert zone.write_pointer == zone.capacity_pages
        if zone.state is ZoneState.EMPTY:
            assert zone.write_pointer == 0
        for block in zone.blocks:
            assert block.write_ptr <= block.pages_per_block
