"""Tests for the zone state machine."""

import pytest

from repro.ssd.geometry import FlashBlock
from repro.zns.zone import Zone, ZoneError, ZoneState


def _zone(n_blocks=2, pages=4, channel=0):
    blocks = [FlashBlock(channel, i % 2, i, pages) for i in range(n_blocks)]
    return Zone(0, blocks)


def test_new_zone_empty():
    zone = _zone()
    assert zone.state is ZoneState.EMPTY
    assert zone.write_pointer == 0
    assert zone.capacity_pages == 8
    assert zone.remaining_pages == 8


def test_zone_requires_single_channel():
    blocks = [FlashBlock(0, 0, 0, 4), FlashBlock(1, 0, 1, 4)]
    with pytest.raises(ValueError):
        Zone(0, blocks)


def test_zone_requires_blocks():
    with pytest.raises(ValueError):
        Zone(0, [])


def test_open_close_cycle():
    zone = _zone()
    zone.open()
    assert zone.state is ZoneState.OPEN
    zone.close()
    assert zone.state is ZoneState.CLOSED
    zone.open()
    assert zone.state is ZoneState.OPEN


def test_append_requires_open():
    zone = _zone()
    with pytest.raises(ZoneError):
        zone.advance(1)


def test_advance_moves_pointer_and_stripes():
    zone = _zone(n_blocks=2, pages=4)
    zone.open()
    placements = zone.advance(4)
    assert zone.write_pointer == 4
    # Pages stripe across the two blocks.
    blocks_used = [block for block, _page in placements]
    assert blocks_used[0] is not blocks_used[1]
    assert placements[0][1] == 0 and placements[2][1] == 1


def test_advance_past_capacity_rejected():
    zone = _zone(n_blocks=1, pages=4)
    zone.open()
    with pytest.raises(ZoneError):
        zone.advance(5)


def test_zone_fills_to_full():
    zone = _zone(n_blocks=1, pages=4)
    zone.open()
    zone.advance(4)
    assert zone.state is ZoneState.FULL
    with pytest.raises(ZoneError):
        zone.open()


def test_finish_pads_to_full():
    zone = _zone()
    zone.open()
    zone.advance(3)
    zone.finish()
    assert zone.state is ZoneState.FULL
    assert zone.remaining_pages == 0


def test_reset_returns_to_empty():
    zone = _zone()
    zone.open()
    zone.advance(2)
    zone.reset()
    assert zone.state is ZoneState.EMPTY
    assert zone.write_pointer == 0
    assert zone.resets == 1


def test_reset_of_empty_rejected():
    with pytest.raises(ZoneError):
        _zone().reset()


def test_locate_bounds():
    zone = _zone(n_blocks=2, pages=4)
    with pytest.raises(ZoneError):
        zone.locate(8)
    block, page = zone.locate(7)
    assert page == 3
