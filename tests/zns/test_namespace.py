"""Tests for the zoned namespace over the DES."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd
from repro.zns import ZnsError, ZonedNamespace, ZoneState


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=8, pages_per_block=8
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    ns = ZonedNamespace(ssd, owner_id=7, channel_ids=[0, 1], blocks_per_zone=4,
                        max_open_zones=2)
    return config, sim, ssd, ns


def test_zone_carving(world):
    config, _sim, ssd, ns = world
    # 16 blocks per channel / 4 per zone = 4 zones per channel.
    assert len(ns.zones) == 8
    assert ns.zone_capacity_pages == 4 * config.pages_per_block
    for zone in ns.zones:
        assert all(block.owner == 7 for block in zone.blocks)
    # Zones stripe chips within their channel.
    chips = {block.chip_id for block in ns.zones[0].blocks}
    assert len(chips) == config.chips_per_channel


def test_no_unowned_blocks_rejected(world):
    config, sim, ssd, _ns = world
    with pytest.raises(ZnsError):
        ZonedNamespace(ssd, owner_id=9, channel_ids=[0], blocks_per_zone=4)


def test_append_charges_channel_time(world):
    _config, sim, ssd, ns = world
    done = ns.append(0, pages=4)
    assert done > 0
    assert ns.zone(0).write_pointer == 4
    assert ssd.channels[ns.zone(0).channel_id].stats.pages_written == 4


def test_append_is_strictly_sequential(world):
    _config, _sim, _ssd, ns = world
    ns.append(0, pages=3)
    ns.append(0, pages=2)
    assert ns.zone(0).write_pointer == 5


def test_read_within_write_pointer(world):
    _config, _sim, ssd, ns = world
    ns.append(0, pages=4)
    done = ns.read(0, page_index=1, pages=2)
    assert done > 0
    with pytest.raises(ZnsError):
        ns.read(0, page_index=3, pages=2)


def test_open_zone_limit_enforced(world):
    _config, _sim, _ssd, ns = world
    ns.open_zone(0)
    ns.open_zone(1)
    with pytest.raises(ZnsError):
        ns.open_zone(2)
    ns.close_zone(0)
    ns.open_zone(2)  # slot freed


def test_implicit_open_on_append(world):
    _config, _sim, _ssd, ns = world
    ns.append(3, pages=1)
    assert ns.zone(3).state is ZoneState.OPEN


def test_full_zone_rejects_append(world):
    _config, _sim, _ssd, ns = world
    ns.append(0, pages=ns.zone_capacity_pages)
    assert ns.zone(0).state is ZoneState.FULL
    from repro.zns.zone import ZoneError

    with pytest.raises(ZoneError):
        ns.append(0, pages=1)


def test_reset_erases_and_reuses(world):
    config, sim, ssd, ns = world
    ns.append(0, pages=ns.zone_capacity_pages)
    done = ns.reset_zone(0)
    assert done >= config.block_erase_us
    assert ns.zone(0).state is ZoneState.EMPTY
    assert all(block.is_free for block in ns.zone(0).blocks)
    # The zone is writable again.
    ns.append(0, pages=2)
    assert ns.zone(0).write_pointer == 2


def test_zones_in_state(world):
    _config, _sim, _ssd, ns = world
    ns.append(0, pages=1)
    assert ns.zone(0) in ns.zones_in(ZoneState.OPEN)
    assert len(ns.zones_in(ZoneState.EMPTY)) == 7


def test_unknown_zone_rejected(world):
    _config, _sim, _ssd, ns = world
    with pytest.raises(ZnsError):
        ns.zone(99)


def test_report_zones(world):
    _config, _sim, _ssd, ns = world
    ns.append(2, pages=5)
    report = ns.report_zones()
    assert len(report) == len(ns.zones)
    row = report[2]
    assert row["state"] == "open"
    assert row["write_pointer"] == 5
    assert row["capacity_pages"] == ns.zone_capacity_pages
    assert {r["zone_id"] for r in report} == set(range(len(ns.zones)))
