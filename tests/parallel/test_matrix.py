"""Tests for experiment matrices and cell construction."""

import pytest

from repro.parallel import ExperimentCell, ExperimentMatrix, plans_for


def test_plans_for_labels_duplicates():
    plans = plans_for(["ycsb", "ycsb", "terasort"])
    assert [p.name for p in plans] == ["ycsb-1", "ycsb-2", "terasort"]
    assert [p.workload for p in plans] == ["ycsb", "ycsb", "terasort"]


def test_plans_for_rejects_unknown_workload():
    with pytest.raises(KeyError):
        plans_for(["no-such-workload"])


def test_matrix_cells_deterministic_order():
    matrix = ExperimentMatrix(
        scenarios=(("s1", ("ycsb", "terasort")), ("s2", ("tpce", "pagerank"))),
        policies=("hardware", "software"),
        seeds=(0, 1),
    )
    ids = [cell.cell_id for cell in matrix.cells()]
    assert ids == [
        "s1/hardware/s0", "s1/hardware/s1",
        "s1/software/s0", "s1/software/s1",
        "s2/hardware/s0", "s2/hardware/s1",
        "s2/software/s0", "s2/software/s1",
    ]
    assert len(matrix) == 8
    # Rebuilding yields identical cells (frozen, value-equal).
    assert matrix.cells() == matrix.cells()


def test_from_workloads_single_scenario():
    matrix = ExperimentMatrix.from_workloads(
        ["ycsb", "terasort"], ["hardware"], seeds=(3,), duration_s=2.0
    )
    (cell,) = matrix.cells()
    assert cell.scenario == "ycsb+terasort"
    assert cell.workloads == ("ycsb", "terasort")
    assert cell.seed == 3
    assert cell.duration_s == 2.0


def test_cell_plans_fresh_each_call():
    cell = ExperimentCell("s", ("ycsb",), "hardware", 0)
    assert cell.plans() is not cell.plans()
