"""Tests for the parallel sweep runner.

The heavy guarantee — merged serial-vs-parallel telemetry is
byte-identical — is asserted here on a small matrix; the benchmark suite
repeats it at full scale.
"""

import pytest

from repro.parallel import (
    CellFailure,
    CellOutcome,
    ExperimentCell,
    ExperimentMatrix,
    ParallelRunner,
    run_cell,
    run_serial,
)

#: A small but non-trivial matrix: two policies x two seeds, short runs.
MATRIX = ExperimentMatrix.from_workloads(
    ["ycsb", "terasort"],
    ["hardware", "software"],
    seeds=(0, 1),
    duration_s=1.0,
    measure_after_s=0.25,
)


@pytest.fixture(scope="module")
def serial_result():
    return run_serial(MATRIX.cells())


@pytest.fixture(scope="module")
def parallel_result():
    return ParallelRunner(workers=2).run(MATRIX.cells())


def test_run_cell_returns_result_and_telemetry():
    cell = ExperimentCell(
        "s", ("ycsb",), "hardware", 0, duration_s=0.5, measure_after_s=0.1
    )
    outcome = run_cell(cell)
    assert outcome.ok
    assert outcome.result is not None
    assert outcome.result.policy == "hardware"
    assert outcome.telemetry.startswith(b"policy,")
    assert outcome.profile["timers"]["sim.event_loop"]["calls"] == 1
    assert outcome.wall_s > 0


def test_run_cell_catches_exceptions():
    cell = ExperimentCell("s", ("no-such-workload",), "hardware", 0)
    outcome = run_cell(cell)
    assert not outcome.ok
    assert outcome.error["type"] == "KeyError"
    assert "no-such-workload" in outcome.error["message"]


def test_serial_and_parallel_telemetry_byte_equal(serial_result, parallel_result):
    assert serial_result.ok and parallel_result.ok
    assert len(serial_result.succeeded) == len(MATRIX)
    assert serial_result.telemetry == parallel_result.telemetry
    assert serial_result.telemetry_digest == parallel_result.telemetry_digest
    assert len(parallel_result.telemetry) > 0


def test_parallel_outcomes_in_matrix_order(parallel_result):
    ids = [o.cell.cell_id for o in parallel_result.outcomes]
    assert ids == [c.cell_id for c in MATRIX.cells()]


def test_profiles_merge_across_workers(parallel_result):
    profile = parallel_result.profile
    assert profile["timers"]["sim.event_loop"]["calls"] == len(MATRIX)
    assert profile["counters"]["sim.events"] > 0


#: Warm-amortization timers whose call counts legitimately depend on the
#: snapshot-cache state each process starts from (a serial sweep warms
#: once per key and restores the rest; a forked worker inherits whatever
#: the parent had cached).  Telemetry stays byte-equal either way — only
#: where the *fixed cost* was paid moves.
WARM_AMORTIZED_TIMERS = frozenset(
    {"harness.warm", "snapshot.save", "snapshot.restore"}
)


def test_serial_parallel_profile_call_counts_match(serial_result, parallel_result):
    serial_timers = serial_result.profile["timers"]
    parallel_timers = parallel_result.profile["timers"]
    # Declared zero-call rows keep the row sets identical even when a
    # timer fired in one topology and not the other.
    assert set(serial_timers) == set(parallel_timers)
    for name, entry in serial_timers.items():
        if name in WARM_AMORTIZED_TIMERS:
            continue
        assert entry["calls"] == parallel_timers[name]["calls"], name


def test_results_keyed_by_cell_id(parallel_result):
    results = parallel_result.results()
    assert set(results) == {c.cell_id for c in MATRIX.cells()}


def test_dead_worker_is_isolated():
    cells = [
        ExperimentCell(
            "good", ("ycsb",), "hardware", 0, duration_s=0.5, measure_after_s=0.1
        ),
        ExperimentCell("boom", ("ycsb",), "hardware", 0, runner="crash"),
        ExperimentCell(
            "also-good", ("ycsb",), "hardware", 1, duration_s=0.5, measure_after_s=0.1
        ),
    ]
    result = ParallelRunner(workers=2).run(cells)
    assert not result.ok
    assert len(result.succeeded) == 2
    (failure,) = result.failures
    assert isinstance(failure, CellFailure)
    assert failure.exitcode == 13
    assert "worker died" in failure.describe()


def test_runner_exception_recorded_as_failure():
    cells = [ExperimentCell("bad", ("no-such-workload",), "hardware", 0)]
    result = ParallelRunner(workers=1).run(cells)
    (failure,) = result.failures
    assert failure.error["type"] == "KeyError"
    assert failure.exitcode is None
    assert "KeyError" in failure.describe()


def test_serial_records_failures_too():
    cells = [ExperimentCell("bad", ("no-such-workload",), "hardware", 0)]
    result = run_serial(cells)
    assert not result.ok
    (failure,) = result.failures
    assert failure.error["type"] == "KeyError"


def test_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelRunner(workers=0)


def test_rejects_bad_hardening_parameters():
    with pytest.raises(ValueError):
        ParallelRunner(join_timeout_s=0.0)
    with pytest.raises(ValueError):
        ParallelRunner(max_attempts=0)
    with pytest.raises(ValueError):
        ParallelRunner(retry_backoff_s=-1.0)


def test_outcome_types(parallel_result):
    assert all(isinstance(o, CellOutcome) for o in parallel_result.outcomes)


# ----------------------------------------------------------------------
# Self-healing: retry-with-backoff, hung-worker watchdog
# ----------------------------------------------------------------------
def _good_cell(scenario, seed=0):
    return ExperimentCell(
        scenario, ("ycsb",), "hardware", seed, duration_s=0.5, measure_after_s=0.1
    )


def test_crashed_worker_retried_then_succeeds(tmp_path):
    """A worker that hard-crashes once comes back on attempt 2."""
    marker = tmp_path / "flaky-marker"
    cells = [
        _good_cell("good"),
        ExperimentCell(str(marker), ("ycsb",), "hardware", 0, runner="flaky"),
    ]
    result = ParallelRunner(
        workers=2, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    assert result.ok
    flaky = result.outcomes[1]
    assert isinstance(flaky, CellOutcome)
    assert flaky.attempts == 2
    assert flaky.telemetry == b"flaky-ok\n"
    assert result.outcomes[0].attempts == 1
    assert marker.exists()


def test_crash_every_attempt_fails_with_attempt_count():
    cells = [ExperimentCell("boom", ("ycsb",), "hardware", 0, runner="crash")]
    result = ParallelRunner(
        workers=1, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    (failure,) = result.failures
    assert isinstance(failure, CellFailure)
    assert failure.attempts == 2
    assert failure.exitcode == 13
    assert not failure.hung
    assert "after 2 attempts" in failure.describe()


def test_deterministic_exception_is_not_retried():
    """A runner that raises fails on attempt 1 even with retries allowed."""
    cells = [ExperimentCell("bad", ("no-such-workload",), "hardware", 0)]
    result = ParallelRunner(workers=1, max_attempts=3).run(cells)
    (failure,) = result.failures
    assert failure.error["type"] == "KeyError"
    assert failure.attempts == 1


def test_hung_worker_terminated_with_partial_results():
    """The watchdog kills a wedged worker; other cells' results survive
    and merge byte-identically to a serial run of the good cells."""
    good = [_good_cell("good", 0), _good_cell("also-good", 1)]
    cells = [
        good[0],
        ExperimentCell("wedge", ("ycsb",), "hardware", 0, runner="hang"),
        good[1],
    ]
    result = ParallelRunner(
        workers=3, join_timeout_s=1.5, max_attempts=1
    ).run(cells)
    assert not result.ok
    (failure,) = result.failures
    assert isinstance(failure, CellFailure)
    assert failure.hung
    assert failure.attempts == 1
    assert "hung" in failure.describe()
    assert len(result.succeeded) == 2
    assert result.telemetry == run_serial(good).telemetry


def test_hung_worker_retried_before_failing():
    cells = [ExperimentCell("wedge", ("ycsb",), "hardware", 0, runner="hang")]
    result = ParallelRunner(
        workers=1, join_timeout_s=0.5, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    (failure,) = result.failures
    assert failure.hung
    assert failure.attempts == 2


def test_retried_worker_profile_absorbed_once(tmp_path):
    """A crash-then-succeed cell's profiler data merges once per cell.

    The flaky runner bumps the ``flaky.attempts`` counter on *every*
    attempt, including the one that dies without reporting.  If a
    retried attempt's profile ever survived into the merged sweep
    profile (absorb once per attempt instead of once per cell), the
    counter would read 2 here.
    """
    from repro.profiling import Profiler

    marker = tmp_path / "flaky-profile-marker"
    cells = [
        ExperimentCell(str(marker), ("ycsb",), "hardware", 0, runner="flaky"),
    ]
    result = ParallelRunner(
        workers=1, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    assert result.ok
    (outcome,) = result.outcomes
    assert outcome.attempts == 2  # the crash really happened
    # The sweep-level merge sees one profile per cell...
    assert result.profile["counters"]["flaky.attempts"] == 1
    # ...and the pretrain-style per-outcome absorb loop agrees.
    parent = Profiler()
    for o in result.outcomes:
        if isinstance(o, CellOutcome):
            parent.absorb(o.profile)
    assert parent.counters()["flaky.attempts"] == 1


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------
def test_pool_telemetry_byte_equal_to_serial(serial_result):
    result = ParallelRunner(workers=2, pool=True).run(MATRIX.cells())
    assert result.ok
    assert result.mode.startswith("pool/")
    assert result.telemetry == serial_result.telemetry
    assert result.telemetry_digest == serial_result.telemetry_digest
    ids = [o.cell.cell_id for o in result.outcomes]
    assert ids == [c.cell_id for c in MATRIX.cells()]


def test_pool_reuses_workers_across_cells():
    """More cells than workers: the pool must reuse processes rather
    than forking one per cell."""
    cells = [_good_cell(f"s{i}", seed=i % 2) for i in range(4)]
    result = ParallelRunner(workers=2, pool=True).run(cells)
    assert result.ok
    pids = {o.pid for o in result.outcomes}
    assert len(pids) <= 2


def test_pool_worker_snapshot_cache_amortizes_warm(monkeypatch, tmp_path):
    """A pooled worker running two same-key cells warms once: the second
    cell restores from the worker's in-process snapshot cache."""
    from repro.harness import snapshots

    # Forked pool workers inherit this process's snapshot cache: start
    # cold so earlier tests' entries cannot turn the warm miss into a hit.
    snapshots.clear_memory_cache()
    monkeypatch.setenv("REPRO_SNAPSHOTS", "mem")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cells = [_good_cell("a", seed=0), _good_cell("b", seed=0)]
    result = ParallelRunner(workers=1, pool=True, profile=True).run(cells)
    assert result.ok
    merged = result.profile
    assert merged["counters"].get("snapshot.misses", 0) == 1
    assert merged["counters"].get("snapshot.hits", 0) == 1
    assert merged["timers"]["harness.warm"]["calls"] == 1
    assert merged["timers"]["snapshot.restore"]["calls"] == 1


def test_pool_dead_worker_respawned_and_cell_retried(tmp_path):
    marker = tmp_path / "pool-flaky-marker"
    cells = [
        _good_cell("good"),
        ExperimentCell(str(marker), ("ycsb",), "hardware", 0, runner="flaky"),
        _good_cell("also-good", seed=1),
    ]
    result = ParallelRunner(
        workers=2, pool=True, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    assert result.ok
    flaky = result.outcomes[1]
    assert isinstance(flaky, CellOutcome)
    assert flaky.attempts == 2
    assert flaky.telemetry == b"flaky-ok\n"
    assert marker.exists()


def test_pool_crash_every_attempt_fails_with_attempt_count():
    cells = [ExperimentCell("boom", ("ycsb",), "hardware", 0, runner="crash")]
    result = ParallelRunner(
        workers=1, pool=True, max_attempts=2, retry_backoff_s=0.05
    ).run(cells)
    (failure,) = result.failures
    assert isinstance(failure, CellFailure)
    assert failure.attempts == 2
    assert not failure.hung


def test_pool_deterministic_exception_not_retried():
    cells = [
        _good_cell("good"),
        ExperimentCell("bad", ("no-such-workload",), "hardware", 0),
    ]
    result = ParallelRunner(workers=1, pool=True, max_attempts=3).run(cells)
    assert len(result.succeeded) == 1
    (failure,) = result.failures
    assert failure.error["type"] == "KeyError"
    assert failure.attempts == 1


def test_pool_hung_worker_terminated_with_partial_results():
    good = [_good_cell("good", 0), _good_cell("also-good", 1)]
    cells = [
        good[0],
        ExperimentCell("wedge", ("ycsb",), "hardware", 0, runner="hang"),
        good[1],
    ]
    result = ParallelRunner(
        workers=3, pool=True, join_timeout_s=1.5, max_attempts=1
    ).run(cells)
    assert not result.ok
    (failure,) = result.failures
    assert failure.hung
    assert len(result.succeeded) == 2
    assert result.telemetry == run_serial(good).telemetry
