"""Tests for the analytic pre-training environment."""

import numpy as np
import pytest

from repro.config import RLConfig, SSDConfig
from repro.core.fast_env import FastFleetEnv, FastVssdSpec
from repro.sched.request import Priority
from repro.workloads import get_spec


def _env(n=2, seed=0, **kwargs):
    config = SSDConfig()
    specs = []
    for i in range(n):
        workload = get_spec("livemaps" if i == 0 else "batchanalytics")
        specs.append(FastVssdSpec(workload=workload, channels=16 // n, alpha=0.01))
    return FastFleetEnv(specs, RLConfig(), config, np.random.default_rng(seed), **kwargs)


def _idx(env, description):
    for i in range(len(env.action_space)):
        if env.action_space.describe(i) == description:
            return i
    raise KeyError(description)


def _clean(env):
    env.offered[:] = 0
    env.harvested[:] = 0
    env.priority = [Priority.MEDIUM] * env.n
    return env._states(env._simulate_window())


def test_reset_returns_states_for_all_agents():
    env = _env(3)
    states = env.reset()
    assert set(states) == {0, 1, 2}
    assert all(s.shape == (33,) for s in states.values())


def test_episode_terminates():
    env = _env(2, episode_windows=5)
    env.reset()
    noop = _idx(env, "Set_Priority(MEDIUM)")
    done = False
    steps = 0
    while not done:
        _states, _rewards, done, _info = env.step({0: noop, 1: noop})
        steps += 1
    assert steps == 5


def test_make_harvestable_registers_offer():
    env = _env(2)
    _clean(env)
    env.step({0: _idx(env, "Make_Harvestable(3ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    assert env.offered[0] == 3


def test_offer_capped_at_half_channels():
    env = _env(2)
    _clean(env)
    env.step({0: _idx(env, "Make_Harvestable(4ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    assert env.offered[0] <= env.specs[0].channels // 2


def test_harvest_consumes_pool():
    env = _env(2)
    _clean(env)
    env.step({0: _idx(env, "Make_Harvestable(3ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    env.step({0: _idx(env, "Set_Priority(MEDIUM)"), 1: _idx(env, "Harvest(2ch)")})
    assert env.harvested[1, 0] == 2


def test_cannot_harvest_own_offer():
    env = _env(2)
    _clean(env)
    env.step({0: _idx(env, "Make_Harvestable(3ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    env.step({0: _idx(env, "Harvest(3ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    assert env.harvested[0, 0] == 0


def test_reclaim_shrinks_harvest():
    env = _env(2)
    _clean(env)
    env.step({0: _idx(env, "Make_Harvestable(3ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    env.step({0: _idx(env, "Set_Priority(MEDIUM)"), 1: _idx(env, "Harvest(3ch)")})
    env.step({0: _idx(env, "Make_Harvestable(0ch)"), 1: _idx(env, "Set_Priority(MEDIUM)")})
    assert env.offered[0] == 0
    assert env.harvested[1, 0] == 0


def test_harvesting_raises_bandwidth_reward():
    """A capacity-bound batch job earns more after harvesting."""
    totals = []
    for harvest in (False, True):
        env = _env(2, seed=3, episode_windows=12)
        _clean(env)
        noop = _idx(env, "Set_Priority(MEDIUM)")
        offer = _idx(env, "Make_Harvestable(4ch)")
        take = _idx(env, "Harvest(4ch)")
        total = 0.0
        for t in range(12):
            actions = {0: offer if harvest else noop, 1: take if harvest else noop}
            _s, rewards, _d, info = env.step(actions)
            total += info["singles"][1]
        totals.append(total)
    assert totals[1] > totals[0]


def test_priority_high_cuts_violations():
    vio = {}
    for priority_name in ("LOW", "HIGH"):
        env = _env(2, seed=5, episode_windows=10)
        _clean(env)
        env.step({0: _idx(env, "Make_Harvestable(4ch)"), 1: _idx(env, "Harvest(4ch)")})
        env.step({0: _idx(env, "Set_Priority(MEDIUM)"), 1: _idx(env, "Harvest(4ch)")})
        total = 0.0
        act = _idx(env, f"Set_Priority({priority_name})")
        noop = _idx(env, "Set_Priority(MEDIUM)")
        for _ in range(8):
            _s, _r, _d, info = env.step({0: act, 1: noop})
            total += info["stats"][0].slo_violation_frac
        vio[priority_name] = total
    assert vio["HIGH"] < vio["LOW"]


def test_interference_coef_scales_tails():
    tails = []
    for coef in (1.0, 10.0):
        env = _env(2, seed=7, episode_windows=10, interference_coef=coef)
        _clean(env)
        env.step({0: _idx(env, "Make_Harvestable(4ch)"), 1: _idx(env, "Harvest(4ch)")})
        _s, _r, _d, info = env.step(
            {0: _idx(env, "Set_Priority(MEDIUM)"), 1: _idx(env, "Set_Priority(MEDIUM)")}
        )
        tails.append(info["stats"][0].avg_latency_us)
    assert tails[1] > tails[0]


def test_requires_specs():
    with pytest.raises(ValueError):
        FastFleetEnv([], RLConfig(), SSDConfig(), np.random.default_rng(0))


def test_open_loop_demand_uses_eval_anchor():
    """Latency demand sits at the evaluation-service anchor (~15% of a
    half-device effective allocation), deliberately independent of the
    training workload's own rate (see the _demand_mbps docstring)."""
    env = _env(2, seed=0)
    from repro.core.fast_env import CHANNEL_EFFICIENCY

    anchor = 0.15 * (env.ssd_config.num_channels / 2.0) * env.chan_bw * CHANNEL_EFFICIENCY
    samples = [env._demand_mbps(0, t) for t in np.linspace(0, 5.5, 40)]
    peak = max(samples)
    # Peak phase scale for livemaps is 1.5; allow sampling noise.
    assert peak == pytest.approx(anchor * 1.5, rel=0.2)


def test_closed_loop_demand_independent_of_allocation():
    """A batch job demands the same bandwidth with 2 or 8 channels."""
    demands = {}
    for n, chans in ((2, 8), (8, 2)):
        env = _env(2, seed=0)
        env.specs[1].channels = chans
        demands[chans] = np.mean([env._demand_mbps(1, t) for t in np.linspace(0, 2.9, 20)])
    assert demands[8] == pytest.approx(demands[2], rel=0.15)


def test_bi_slo_defaults_to_batch_scale():
    spec = FastVssdSpec(workload=get_spec("batchanalytics"), channels=8, alpha=0.0)
    assert spec.slo_latency_us == 50_000.0
    lc = FastVssdSpec(workload=get_spec("livemaps"), channels=8, alpha=0.01)
    assert lc.slo_latency_us == 1000.0
