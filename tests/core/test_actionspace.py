"""Tests for the discrete RL action space."""

import pytest

from repro.core.actionspace import (
    HARVEST_LEVELS,
    HARVESTABLE_LEVELS,
    PRIORITY_LEVELS,
    ActionSpace,
)
from repro.sched.request import Priority
from repro.virt.actions import HarvestAction, MakeHarvestableAction, SetPriorityAction


@pytest.fixture
def space():
    return ActionSpace(channel_bandwidth_mbps=60.0)


def test_covers_all_three_action_kinds(space):
    kinds = {space.kind(i) for i in range(len(space))}
    assert kinds == {"harvest", "make_harvestable", "set_priority"}


def test_action_count(space):
    expected = len(HARVEST_LEVELS) + len(HARVESTABLE_LEVELS) + len(PRIORITY_LEVELS)
    assert space.num_actions == expected


def test_harvest_command_bandwidth(space):
    index = space.indices_of("harvest")[1]  # level 2
    command = space.to_command(index, vssd_id=3)
    assert isinstance(command, HarvestAction)
    assert command.vssd_id == 3
    assert command.gsb_bw_mbps == pytest.approx(120.0, rel=1e-6)


def test_make_harvestable_zero_level(space):
    index = space.indices_of("make_harvestable")[0]
    command = space.to_command(index, vssd_id=1)
    assert isinstance(command, MakeHarvestableAction)
    assert command.gsb_bw_mbps < 1.0  # level 0 + epsilon


def test_priority_commands(space):
    indices = space.indices_of("set_priority")
    levels = [space.to_command(i, 0).level for i in indices]
    assert levels == [Priority.LOW, Priority.MEDIUM, Priority.HIGH]
    assert all(isinstance(space.to_command(i, 0), SetPriorityAction) for i in indices)


def test_describe_human_readable(space):
    descriptions = [space.describe(i) for i in range(len(space))]
    assert "Harvest(1ch)" in descriptions
    assert "Set_Priority(HIGH)" in descriptions
    assert "Make_Harvestable(0ch)" in descriptions


def test_bandwidth_levels_round_trip(space):
    """Converting a level-k command back to channels yields k."""
    from repro.config import SSDConfig
    from repro.ssd import Ssd
    from repro.sim import Simulator
    from repro.ssd.hbt import HarvestedBlockTable
    from repro.virt.gsb_manager import GsbManager

    config = SSDConfig()
    manager = GsbManager(Ssd(config, Simulator()), HarvestedBlockTable())
    space = ActionSpace(config.channel_write_bandwidth_mbps)
    for k, index in zip(HARVEST_LEVELS, space.indices_of("harvest")):
        command = space.to_command(index, 0)
        assert manager.bandwidth_to_channels(command.gsb_bw_mbps) == k


def test_decode_covers_catalog(space):
    """decode() is the public (kind, level) surface; it agrees with
    kind() and enumerates the documented levels per family."""
    decoded = [space.decode(i) for i in range(len(space))]
    assert [kind for kind, _level in decoded] == [
        space.kind(i) for i in range(len(space))
    ]
    levels = {}
    for kind, level in decoded:
        levels.setdefault(kind, []).append(level)
    assert levels["harvest"] == list(HARVEST_LEVELS)
    assert levels["make_harvestable"] == list(HARVESTABLE_LEVELS)
    assert levels["set_priority"] == list(PRIORITY_LEVELS)


def test_invalid_bandwidth_rejected():
    with pytest.raises(ValueError):
        ActionSpace(0.0)
