"""Tests for the per-vSSD monitor."""

import pytest

from repro.core.monitor import VssdMonitor
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def world(small_config):
    virt = StorageVirtualizer(config=small_config)
    vssd = virt.create_vssd("v", [0, 1], slo_latency_us=1000.0)
    monitor = VssdMonitor(vssd)
    virt.dispatcher.add_completion_callback(monitor.on_complete)
    return virt, vssd, monitor


def _run_io(virt, vssd, n=20, op="write", pages=1):
    for i in range(n):
        virt.dispatcher.submit(
            IoRequest(vssd.vssd_id, op, i, pages, virt.config.page_size, virt.sim.now)
        )
    virt.sim.run()


def test_window_stats_counts(world):
    virt, vssd, monitor = world
    _run_io(virt, vssd, n=10, op="write")
    _run_io(virt, vssd, n=5, op="read")
    stats = monitor.snapshot_window(virt.sim.now_seconds)
    assert stats.completed == 15
    assert stats.reads == 5
    assert stats.writes == 10
    assert stats.rw_ratio == pytest.approx(5 / 15)


def test_window_bandwidth(world):
    virt, vssd, monitor = world
    _run_io(virt, vssd, n=8, pages=2)
    elapsed = virt.sim.now_seconds
    stats = monitor.snapshot_window(elapsed)
    expected = 8 * 2 * virt.config.page_size / (1024 * 1024) / elapsed
    assert stats.avg_bw_mbps == pytest.approx(expected)


def test_window_resets_counters(world):
    virt, vssd, monitor = world
    _run_io(virt, vssd, n=10)
    monitor.snapshot_window(virt.sim.now_seconds)
    stats = monitor.snapshot_window(virt.sim.now_seconds + 1.0)
    assert stats.completed == 0
    assert stats.avg_bw_mbps == 0.0


def test_slo_violations_tracked(world):
    virt, vssd, monitor = world
    monitor.slo_latency_us = 0.001  # everything violates
    _run_io(virt, vssd, n=10)
    stats = monitor.snapshot_window(virt.sim.now_seconds)
    assert stats.slo_violation_frac == 1.0
    assert monitor.overall_slo_violation_frac() == 1.0


def test_latency_percentiles(world):
    virt, vssd, monitor = world
    _run_io(virt, vssd, n=50)
    p50 = monitor.latency_percentile(50)
    p99 = monitor.latency_percentile(99)
    assert 0 < p50 <= p99


def test_measure_from_filters_early_requests(world):
    virt, vssd, monitor = world
    monitor.measure_from_s = 1e9  # far future: nothing recorded
    _run_io(virt, vssd, n=10)
    assert monitor.total_completed == 0
    # Window counters still see the traffic (RL states keep flowing).
    stats = monitor.snapshot_window(virt.sim.now_seconds)
    assert stats.completed == 10


def test_failed_requests_ignored(world):
    virt, vssd, monitor = world
    request = IoRequest(vssd.vssd_id, "write", 0, 1, virt.config.page_size, 0.0)
    request.failed = True
    request.complete_time = 1.0
    monitor.on_complete(request)
    assert monitor.total_completed == 0


def test_other_vssd_requests_ignored(world):
    virt, vssd, monitor = world
    other = IoRequest(99, "write", 0, 1, virt.config.page_size, 0.0)
    other.dispatch_time = other.complete_time = 1.0
    monitor.on_complete(other)
    assert monitor.total_completed == 0


def test_recent_trace_collected(world):
    virt, vssd, monitor = world
    _run_io(virt, vssd, n=10, op="read", pages=2)
    assert len(monitor.recent_trace) == 10
    _t, is_read, _lpn, pages = monitor.recent_trace[0]
    assert is_read == 1
    assert pages == 2


def test_avail_capacity_fraction(world):
    virt, vssd, monitor = world
    stats = monitor.snapshot_window(1.0)
    assert stats.avail_capacity_frac == pytest.approx(1.0)
    vssd.ftl.warm_fill(range(vssd.ftl.free_pages() // 2))
    stats = monitor.snapshot_window(2.0)
    assert stats.avail_capacity_frac == pytest.approx(0.5, abs=0.05)


def test_in_gc_flag_reflects_channels(world):
    virt, vssd, monitor = world
    virt.ssd.channels[0].occupy_for_gc(0, migrate_reads=1, erases=1)
    stats = monitor.snapshot_window(0.001)
    assert stats.in_gc is True
