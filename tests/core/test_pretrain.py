"""Tests for offline pre-training (kept tiny: 2-3 iterations)."""

import numpy as np
import pytest

from repro.config import RLConfig
from repro.core.pretrain import (
    PretrainResult,
    _merge_buffers,
    _sample_collocation,
    pretrain,
)
from repro.config import SSDConfig
from repro.rl import RolloutBuffer


def test_pretrain_returns_trained_net():
    result = pretrain(iterations=2, seed=0, rollout_batch=64, episode_windows=5)
    assert isinstance(result, PretrainResult)
    assert len(result.mean_rewards) == 2
    assert result.net.num_parameters() > 0


def test_pretrain_checkpoint_selected():
    result = pretrain(iterations=20, seed=0, rollout_batch=64, episode_windows=5)
    assert result.best_iteration >= 0
    assert np.isfinite(result.best_reward)


def test_pretrain_deterministic_given_seed():
    a = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5)
    b = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5)
    assert np.allclose(a.net.get_flat_params(), b.net.get_flat_params())


def test_sample_collocation_shape():
    rng = np.random.default_rng(0)
    config = SSDConfig()
    for _ in range(20):
        specs = _sample_collocation(rng, config)
        assert 2 <= len(specs) <= 8
        # At least one latency service and one bandwidth job, so both
        # harvesting directions exist.
        categories = {spec.workload.category for spec in specs}
        assert categories == {"latency", "bandwidth"}
        assert sum(spec.channels for spec in specs) <= config.num_channels


def test_merge_buffers_normalizes_per_agent():
    rl = RLConfig()
    big = RolloutBuffer(rl.discount_factor, rl.gae_lambda)
    small = RolloutBuffer(rl.discount_factor, rl.gae_lambda)
    rng = np.random.default_rng(0)
    for _ in range(16):
        big.add(rng.standard_normal(3), 0, -1.0, 100.0 * rng.random(), 0.0)
        small.add(rng.standard_normal(3), 0, -1.0, 0.01 * rng.random(), 0.0)
    big.finish_path()
    small.finish_path()
    merged = _merge_buffers([big, small], rl)
    adv = np.asarray(merged.advantages)
    # Both halves contribute unit-scale advantages after normalization.
    assert np.abs(adv[:16]).max() == pytest.approx(np.abs(adv[16:]).max(), rel=2.0)
    assert len(merged) == 32


def test_interference_curriculum_applies():
    """Early iterations use the mild coefficient, late ones the harsh."""
    seen = []
    import sys

    pretrain_module = sys.modules["repro.core.pretrain"]
    original = pretrain_module.FastFleetEnv

    class SpyEnv(original):
        def __init__(self, *args, **kwargs):
            seen.append(kwargs.get("interference_coef"))
            super().__init__(*args, **kwargs)

    pretrain_module.FastFleetEnv = SpyEnv
    try:
        pretrain(iterations=4, seed=0, rollout_batch=32, episode_windows=3,
                 interference_schedule=((0.5, 1.0), (1.0, 9.0)))
    finally:
        pretrain_module.FastFleetEnv = original
    assert 1.0 in seen and 9.0 in seen
