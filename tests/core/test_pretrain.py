"""Tests for offline pre-training (kept tiny: 2-3 iterations)."""

import numpy as np
import pytest

from repro.config import RLConfig
from repro.core.pretrain import (
    PretrainResult,
    _evaluate_greedy,
    _merge_buffers,
    _sample_collocation,
    apply_reward_ablation,
    coef_at,
    pretrain,
    pretrain_best,
)
from repro.config import SSDConfig
from repro.rl import RolloutBuffer
from repro.rl.policy import CategoricalPolicy


def test_pretrain_returns_trained_net():
    result = pretrain(iterations=2, seed=0, rollout_batch=64, episode_windows=5)
    assert isinstance(result, PretrainResult)
    assert len(result.mean_rewards) == 2
    assert result.net.num_parameters() > 0


def test_pretrain_checkpoint_selected():
    result = pretrain(iterations=20, seed=0, rollout_batch=64, episode_windows=5)
    assert result.best_iteration >= 0
    assert np.isfinite(result.best_reward)


def test_pretrain_deterministic_given_seed():
    a = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5)
    b = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5)
    assert np.allclose(a.net.get_flat_params(), b.net.get_flat_params())


def test_sample_collocation_shape():
    rng = np.random.default_rng(0)
    config = SSDConfig()
    for _ in range(20):
        specs = _sample_collocation(rng, config)
        assert 2 <= len(specs) <= 8
        # At least one latency service and one bandwidth job, so both
        # harvesting directions exist.
        categories = {spec.workload.category for spec in specs}
        assert categories == {"latency", "bandwidth"}
        assert sum(spec.channels for spec in specs) <= config.num_channels


def test_sample_collocation_assigns_every_channel():
    """No stranded remainder: tenant channels sum to the whole device,
    with the extra channels going to the first ``num_channels % n``
    tenants, one each."""
    rng = np.random.default_rng(1)
    config = SSDConfig()
    sizes_seen = set()
    for _ in range(200):
        specs = _sample_collocation(rng, config)
        n = len(specs)
        sizes_seen.add(n)
        assert sum(spec.channels for spec in specs) == config.num_channels
        base, remainder = divmod(config.num_channels, n)
        expected = [base + (1 if i < remainder else 0) for i in range(n)]
        assert [spec.channels for spec in specs] == expected
    # The uneven mixes (the ones the old // split shortchanged) showed up.
    assert {3, 6} <= sizes_seen


def test_coef_at_stage_boundaries():
    schedule = ((0.5, 3.0), (1.0, 7.0))
    # Progress (i+1)/iterations exactly at a stage fraction still belongs
    # to that stage: iteration 4 of 10 has progress 0.5.
    assert coef_at(4, 10, schedule) == 3.0
    assert coef_at(5, 10, schedule) == 7.0
    assert coef_at(9, 10, schedule) == 7.0
    # Fractions short of 1.0 fall through to the last stage's coefficient.
    assert coef_at(9, 10, ((0.3, 1.0), (0.6, 2.0))) == 2.0
    # Single-stage schedule covers every iteration.
    assert coef_at(0, 4, ((1.0, 5.0),)) == 5.0


def test_apply_reward_ablation_overrides_in_place():
    rng = np.random.default_rng(2)
    specs = _sample_collocation(rng, SSDConfig())
    original = [spec.alpha for spec in specs]
    assert len(set(original)) > 1  # per-cluster alphas differ
    returned = apply_reward_ablation(specs, 0.42)
    assert returned is specs  # mutates and returns the same list
    assert all(spec.alpha == 0.42 for spec in specs)
    # None leaves the (now overridden) alphas untouched.
    assert apply_reward_ablation(specs, None) is specs
    assert all(spec.alpha == 0.42 for spec in specs)


def test_merge_buffers_normalizes_per_agent():
    rl = RLConfig()
    big = RolloutBuffer(rl.discount_factor, rl.gae_lambda)
    small = RolloutBuffer(rl.discount_factor, rl.gae_lambda)
    rng = np.random.default_rng(0)
    for _ in range(16):
        big.add(rng.standard_normal(3), 0, -1.0, 100.0 * rng.random(), 0.0)
        small.add(rng.standard_normal(3), 0, -1.0, 0.01 * rng.random(), 0.0)
    big.finish_path()
    small.finish_path()
    merged = _merge_buffers([big, small], rl)
    adv = np.asarray(merged.advantages)
    # Both halves contribute unit-scale advantages after normalization.
    assert np.abs(adv[:16]).max() == pytest.approx(np.abs(adv[16:]).max(), rel=2.0)
    assert len(merged) == 32


def test_interference_curriculum_applies():
    """Early iterations use the mild coefficient, late ones the harsh."""
    seen = []
    import sys

    pretrain_module = sys.modules["repro.core.pretrain"]
    original = pretrain_module.FastFleetEnv

    class SpyEnv(original):
        def __init__(self, *args, **kwargs):
            seen.append(kwargs.get("interference_coef"))
            super().__init__(*args, **kwargs)

    pretrain_module.FastFleetEnv = SpyEnv
    try:
        pretrain(iterations=4, seed=0, rollout_batch=32, episode_windows=3,
                 interference_schedule=((0.5, 1.0), (1.0, 9.0)))
    finally:
        pretrain_module.FastFleetEnv = original
    assert 1.0 in seen and 9.0 in seen


# ----------------------------------------------------------------------
# Vectorized engine (envs > 1) and the parallel seed search
# ----------------------------------------------------------------------

def test_pretrain_vectorized_returns_trained_net():
    result = pretrain(
        iterations=2, seed=0, rollout_batch=64, episode_windows=5, envs=4
    )
    assert isinstance(result, PretrainResult)
    assert len(result.mean_rewards) == 2
    assert all(np.isfinite(r) for r in result.mean_rewards)


def test_pretrain_vectorized_deterministic_given_seed():
    a = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5, envs=3)
    b = pretrain(iterations=2, seed=5, rollout_batch=64, episode_windows=5, envs=3)
    assert (a.net.get_flat_params() == b.net.get_flat_params()).all()
    assert a.mean_rewards == b.mean_rewards


def test_pretrain_vectorized_quality_matches_scalar():
    """The two engines explore different streams but must land in the
    same place: greedy-eval scores agree within a small tolerance."""
    scalar = pretrain(iterations=8, seed=3, rollout_batch=64, episode_windows=5)
    vector = pretrain(
        iterations=8, seed=3, rollout_batch=64, episode_windows=5, envs=4
    )
    rl, ssd = RLConfig(), SSDConfig()
    score_scalar = _evaluate_greedy(CategoricalPolicy(scalar.net), rl, ssd)
    score_vector = _evaluate_greedy(CategoricalPolicy(vector.net), rl, ssd)
    assert abs(score_scalar - score_vector) < 0.15


def test_pretrain_rejects_bad_envs():
    with pytest.raises(ValueError):
        pretrain(iterations=1, envs=0)


def test_pretrain_best_parallel_matches_serial():
    """The process fan-out selects the identical winner (same params)."""
    kwargs = dict(rollout_batch=32, episode_windows=3)
    serial = pretrain_best(seeds=(0, 1), iterations=2, **kwargs)
    parallel = pretrain_best(seeds=(0, 1), iterations=2, workers=2, **kwargs)
    assert (
        serial.net.get_flat_params() == parallel.net.get_flat_params()
    ).all()
    assert serial.best_reward == parallel.best_reward
