"""Tests for RL state featurization."""

import pytest

from repro.config import RLConfig
from repro.core.monitor import WindowStats
from repro.core.state import StateFeaturizer, window_features


def _stats(**kwargs):
    defaults = dict(
        vssd_id=0,
        window_start_s=0.0,
        window_end_s=2.0,
        avg_bw_mbps=100.0,
        avg_iops=2000.0,
        avg_latency_us=800.0,
        slo_violation_frac=0.05,
        queue_delay_us=500.0,
        rw_ratio=0.7,
        avail_capacity_frac=0.5,
        in_gc=True,
        cur_priority=2,
        completed=4000,
        reads=2800,
        writes=1200,
    )
    defaults.update(kwargs)
    return WindowStats(**defaults)


def test_eleven_features_per_window():
    features = window_features(_stats(), [])
    assert features.shape == (11,)


def test_feature_values():
    other = _stats(avg_iops=1000.0, slo_violation_frac=0.1)
    features = window_features(_stats(), [other, other], guaranteed_bw_mbps=200.0)
    assert features[0] == pytest.approx(0.5)     # bw / guaranteed
    assert features[3] == pytest.approx(0.05)    # own violations
    assert features[5] == pytest.approx(0.7)     # rw ratio
    assert features[7] == 1.0                    # in_gc
    assert features[8] == pytest.approx(1.0)     # HIGH priority / 2
    assert features[9] == pytest.approx(0.2)     # shared IOPS sum / 1e4
    assert features[10] == pytest.approx(0.2)    # shared violations sum


def test_state_dim_is_three_windows():
    config = RLConfig()
    featurizer = StateFeaturizer(config)
    assert featurizer.state_dim == 33
    state = featurizer.push(_stats(), [])
    assert state.shape == (33,)


def test_cold_start_zero_padded():
    featurizer = StateFeaturizer(RLConfig())
    state = featurizer.push(_stats(), [])
    assert (state[:22] == 0).all()
    assert not (state[22:] == 0).all()


def test_history_rolls():
    featurizer = StateFeaturizer(RLConfig())
    featurizer.push(_stats(avg_bw_mbps=100.0), [], guaranteed_bw_mbps=100.0)
    featurizer.push(_stats(avg_bw_mbps=200.0), [], guaranteed_bw_mbps=100.0)
    c = featurizer.push(_stats(avg_bw_mbps=300.0), [], guaranteed_bw_mbps=100.0)
    # Oldest window first: 1.0, 2.0, 3.0 in the bw slots.
    assert c[0] == pytest.approx(1.0)
    assert c[11] == pytest.approx(2.0)
    assert c[22] == pytest.approx(3.0)
    d = featurizer.push(_stats(avg_bw_mbps=400.0), [], guaranteed_bw_mbps=100.0)
    assert d[0] == pytest.approx(2.0)  # the first window rolled off


def test_reset_clears_history():
    featurizer = StateFeaturizer(RLConfig())
    featurizer.push(_stats(), [])
    featurizer.reset()
    assert (featurizer.state() == 0).all()


def test_scale_free_bandwidth_feature():
    small = window_features(_stats(avg_bw_mbps=50.0), [], guaranteed_bw_mbps=100.0)
    large = window_features(_stats(avg_bw_mbps=500.0), [], guaranteed_bw_mbps=1000.0)
    assert small[0] == pytest.approx(large[0])
