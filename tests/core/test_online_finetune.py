"""Online fine-tuning: agents keep learning at deployment (Section 4.7).

The paper fine-tunes every 10 windows.  These tests drive enough windows
through the controller on a small DES that at least one PPO update fires,
and verify it changes the agent's own network copy only.
"""

import numpy as np
import pytest

from repro.config import RLConfig, SSDConfig
from repro.core.actionspace import ActionSpace
from repro.core.controller import FleetIoController
from repro.rl import PolicyValueNet
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def world():
    config = SSDConfig(
        num_channels=4, chips_per_channel=2, blocks_per_chip=8,
        pages_per_block=16, min_superblock_blocks=2,
    )
    # Small batch so the 10-window fine-tune interval has enough samples.
    rl = RLConfig(decision_interval_s=0.05, batch_size=8)
    virt = StorageVirtualizer(config=config)
    space = ActionSpace(config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(rl.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(
        virt, net, rl_config=rl, explore=True, finetune=True, seed=1
    )
    a = virt.create_vssd("a", [0, 1], slo_latency_us=2000.0)
    b = virt.create_vssd("b", [2, 3], slo_latency_us=2000.0)
    agent_a = controller.register_vssd(a)
    agent_b = controller.register_vssd(b)
    return config, virt, controller, net, agent_a, agent_b


def _traffic(virt, vssd_id, config, n=30):
    for i in range(n):
        virt.dispatcher.submit(
            IoRequest(vssd_id, "write", i, 1, config.page_size, virt.sim.now)
        )


def test_finetune_updates_agent_net(world):
    config, virt, controller, net, agent_a, agent_b = world
    before_a = agent_a.net.get_flat_params().copy()
    before_shared = net.get_flat_params().copy()
    controller.start()
    for window in range(24):
        _traffic(virt, agent_a.vssd.vssd_id, config)
        _traffic(virt, agent_b.vssd.vssd_id, config)
        virt.sim.run_until_seconds(virt.sim.now_seconds + 0.05)
    # At least one periodic PPO update ran...
    assert agent_a.trainer.optimizer.steps > 0
    # ...and moved the agent's own clone, not the shared pretrained net.
    assert not np.allclose(agent_a.net.get_flat_params(), before_a)
    assert np.allclose(net.get_flat_params(), before_shared)


def test_agents_finetune_independently(world):
    config, virt, controller, _net, agent_a, agent_b = world
    controller.start()
    for window in range(24):
        _traffic(virt, agent_a.vssd.vssd_id, config)
        _traffic(virt, agent_b.vssd.vssd_id, config)
        virt.sim.run_until_seconds(virt.sim.now_seconds + 0.05)
    # Different trajectories -> diverged parameter vectors.
    assert not np.allclose(
        agent_a.net.get_flat_params(), agent_b.net.get_flat_params()
    )


def test_finetune_disabled_keeps_params_frozen(world):
    config, virt, controller, _net, agent_a, _agent_b = world
    agent_a.finetune = False
    before = agent_a.net.get_flat_params().copy()
    controller.start()
    for window in range(24):
        _traffic(virt, agent_a.vssd.vssd_id, config)
        virt.sim.run_until_seconds(virt.sim.now_seconds + 0.05)
    assert np.allclose(agent_a.net.get_flat_params(), before)
