"""Tests for the FleetIO decision-loop controller."""

import numpy as np
import pytest

from repro.core.actionspace import ActionSpace
from repro.core.controller import FleetIoController
from repro.rl import PolicyValueNet
from repro.sched import IoRequest
from repro.virt import StorageVirtualizer


@pytest.fixture
def world(small_config, tiny_rl_config):
    virt = StorageVirtualizer(config=small_config)
    space = ActionSpace(small_config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(tiny_rl_config.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(
        virt, net, rl_config=tiny_rl_config, explore=True, finetune=False
    )
    a = virt.create_vssd("a", [0, 1], slo_latency_us=2000.0)
    b = virt.create_vssd("b", [2, 3], slo_latency_us=50_000.0)
    controller.register_vssd(a)
    controller.register_vssd(b)
    return virt, controller, a, b


def _traffic(virt, vssd, n=10):
    for i in range(n):
        virt.dispatcher.submit(
            IoRequest(vssd.vssd_id, "write", i, 1, virt.config.page_size, virt.sim.now)
        )


def test_window_tick_produces_actions(world):
    virt, controller, a, b = world
    controller.start()
    _traffic(virt, a)
    _traffic(virt, b)
    virt.sim.run_until_seconds(0.35)  # three 0.1s windows
    assert controller._window_index >= 3
    assert len(controller.agents[a.vssd_id].actions_taken) >= 3
    assert controller.virt.admission.stats.submitted >= 6


def test_rewards_credited_after_first_window(world):
    virt, controller, a, b = world
    controller.start()
    _traffic(virt, a)
    virt.sim.run_until_seconds(0.25)
    assert len(controller.agents[a.vssd_id].rewards_seen) >= 1


def test_guaranteed_bandwidth_hardware(world):
    virt, controller, a, _b = world
    expected = 2 * virt.config.channel_write_bandwidth_mbps
    assert controller.guaranteed_bandwidth(a.vssd_id) == pytest.approx(expected)


def test_guaranteed_bandwidth_software_share(small_config, tiny_rl_config):
    virt = StorageVirtualizer(config=small_config)
    half = small_config.blocks_per_channel // 2
    a = virt.create_vssd("a", [0, 1, 2, 3], isolation="software", blocks_per_channel=half)
    space = ActionSpace(small_config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(tiny_rl_config.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(virt, net, rl_config=tiny_rl_config)
    controller.register_vssd(a)
    expected = 4 * 0.5 * small_config.channel_write_bandwidth_mbps
    assert controller.guaranteed_bandwidth(a.vssd_id) == pytest.approx(expected)


def test_each_agent_gets_cloned_net(world):
    _virt, controller, a, b = world
    net_a = controller.agents[a.vssd_id].net
    net_b = controller.agents[b.vssd_id].net
    assert net_a is not net_b
    net_a.params["W0"][0, 0] += 99.0
    assert net_b.params["W0"][0, 0] != net_a.params["W0"][0, 0]


def test_classifier_assigns_cluster_and_alpha(small_config, tiny_rl_config):
    from repro.harness.pretrained import get_classifier

    virt = StorageVirtualizer(config=small_config)
    space = ActionSpace(small_config.channel_write_bandwidth_mbps)
    net = PolicyValueNet(tiny_rl_config.state_dim, space.num_actions, (8, 8))
    controller = FleetIoController(
        virt, net, rl_config=tiny_rl_config, classifier=get_classifier(),
        explore=True, finetune=False,
    )
    a = virt.create_vssd("a", [0, 1], slo_latency_us=2000.0)
    agent = controller.register_vssd(a)
    # Feed a YCSB-like trace through the monitor.
    monitor = controller.monitors[a.vssd_id]
    rng = np.random.default_rng(0)
    t = 0.0
    for _ in range(controller.CLASSIFY_MIN_REQUESTS):
        t += 300.0
        monitor.recent_trace.append((t, 1, int(rng.integers(0, 50)), 1))
    controller._classify_workloads()
    assert agent.cluster is not None


def test_unified_alpha_only_skips_classification(world):
    virt, controller, a, _b = world
    controller.unified_alpha_only = True
    controller.classifier = object()  # would crash if used
    controller._classify_workloads()
    assert controller.agents[a.vssd_id].cluster is None


def test_stop_halts_loop(world):
    virt, controller, a, b = world
    controller.start()
    virt.sim.run_until_seconds(0.15)
    controller.stop()
    windows = controller._window_index
    virt.sim.run_until_seconds(0.6)
    assert controller._window_index == windows


def test_window_log_records(world):
    virt, controller, a, b = world
    controller.start()
    virt.sim.run_until_seconds(0.25)
    assert controller.window_log
    entry = controller.window_log[0]
    assert set(entry["actions"]) == {a.vssd_id, b.vssd_id}
