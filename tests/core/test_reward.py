"""Tests for Eq. 1 and Eq. 2 reward functions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reward import (
    multi_agent_rewards,
    reward_config_for_cluster,
    single_agent_reward,
)


def test_eq1_pure_utilization_when_alpha_zero():
    reward = single_agent_reward(300.0, 0.5, guaranteed_bw_mbps=600.0, alpha=0.0)
    assert reward == pytest.approx(0.5)


def test_eq1_pure_isolation_when_alpha_one():
    reward = single_agent_reward(300.0, 0.05, guaranteed_bw_mbps=600.0, alpha=1.0)
    assert reward == pytest.approx(-5.0)  # 0.05 / 0.01


def test_eq1_blend():
    reward = single_agent_reward(
        480.0, 0.02, guaranteed_bw_mbps=480.0, alpha=0.2, slo_violation_guarantee=0.01
    )
    assert reward == pytest.approx(0.8 * 1.0 - 0.2 * 2.0)


def test_eq1_rejects_bad_inputs():
    with pytest.raises(ValueError):
        single_agent_reward(1.0, 0.0, guaranteed_bw_mbps=0.0, alpha=0.1)
    with pytest.raises(ValueError):
        single_agent_reward(1.0, 0.0, guaranteed_bw_mbps=1.0, alpha=2.0)
    with pytest.raises(ValueError):
        single_agent_reward(1.0, 0.0, 1.0, 0.1, slo_violation_guarantee=0.0)


def test_eq2_blends_with_beta():
    singles = {0: 1.0, 1: 0.0}
    blended = multi_agent_rewards(singles, beta=0.6)
    assert blended[0] == pytest.approx(0.6 * 1.0 + 0.4 * 0.0)
    assert blended[1] == pytest.approx(0.6 * 0.0 + 0.4 * 1.0)


def test_eq2_beta_one_is_selfish():
    singles = {0: 1.0, 1: -1.0}
    blended = multi_agent_rewards(singles, beta=1.0)
    assert blended == pytest.approx(singles)


def test_eq2_single_agent_degenerates():
    assert multi_agent_rewards({3: 0.7}, beta=0.6) == {3: pytest.approx(0.7)}


def test_eq2_three_agents_mean_of_others():
    singles = {0: 0.0, 1: 3.0, 2: 6.0}
    blended = multi_agent_rewards(singles, beta=0.5)
    assert blended[0] == pytest.approx(0.5 * 0.0 + 0.5 * 4.5)


def test_eq2_empty():
    assert multi_agent_rewards({}, beta=0.6) == {}


def test_eq2_invalid_beta():
    with pytest.raises(ValueError):
        multi_agent_rewards({0: 1.0}, beta=1.5)


def test_cluster_alpha_lookup():
    assert reward_config_for_cluster("BI") == 0.0
    assert reward_config_for_cluster("LC-1") == 2.5e-2
    assert reward_config_for_cluster("LC-2") == 5e-3
    # Unknown clusters use the unified alpha (Section 3.4).
    assert reward_config_for_cluster("unknown") == 0.01


@given(
    singles=st.dictionaries(
        st.integers(0, 5),
        st.floats(min_value=-5, max_value=5),
        min_size=2,
        max_size=6,
    ),
    beta=st.floats(min_value=0.0, max_value=1.0),
)
def test_eq2_preserves_total_reward(singles, beta):
    """Property: the blend redistributes reward but conserves the sum."""
    blended = multi_agent_rewards(singles, beta)
    assert sum(blended.values()) == pytest.approx(sum(singles.values()), abs=1e-9)
