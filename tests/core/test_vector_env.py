"""Bit-exactness tests for the lockstep vectorized training env.

The contract under test: environment ``k`` of a
:class:`~repro.core.vector_env.VectorFastFleetEnv`, given the same RNG
stream and the same actions, is bit-identical to a lone scalar
:class:`~repro.core.fast_env.FastFleetEnv` — states, rewards, Eq. 1
singles, and every ``WindowStats`` field.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import CLUSTER_ALPHAS, SSDConfig
from repro.core.fast_env import FastFleetEnv, FastVssdSpec
from repro.core.fault_profile import WindowFaultProfile
from repro.core.vector_env import VectorFastFleetEnv, _pow4
from repro.faults.injector import FaultSpec
from repro.workloads.catalog import CLUSTER_GROUND_TRUTH, get_spec


def _specs(names, channels_each=None):
    config = SSDConfig()
    if channels_each is None:
        base, remainder = divmod(config.num_channels, len(names))
        channels_each = [
            base + (1 if i < remainder else 0) for i in range(len(names))
        ]
    return [
        FastVssdSpec(
            workload=get_spec(name),
            channels=channels,
            alpha=CLUSTER_ALPHAS[CLUSTER_GROUND_TRUTH.get(name, "LC-1")],
        )
        for name, channels in zip(names, channels_each)
    ]


MIXES = [
    ("livemaps", "batchanalytics"),
    ("tpce", "batchanalytics", "batchanalytics"),
    ("livemaps", "tpce", "searchengine",
     "batchanalytics", "batchanalytics", "batchanalytics"),
    ("livemaps", "tpce", "searchengine", "livemaps",
     "batchanalytics", "batchanalytics", "batchanalytics", "batchanalytics"),
]


def _lockstep_pair(seed=1234, episode_windows=12, interference_coef=5.0):
    """A vector fleet of all MIXES plus scalar twins on cloned streams."""
    spec_lists = [_specs(names) for names in MIXES]
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(spec_lists))
    vec = VectorFastFleetEnv(
        spec_lists,
        rngs=[np.random.default_rng(child) for child in children],
        episode_windows=episode_windows,
        interference_coef=interference_coef,
    )
    scalars = [
        FastFleetEnv(
            [dataclasses.replace(spec) for spec in specs],
            rng=np.random.default_rng(child),
            episode_windows=episode_windows,
            interference_coef=interference_coef,
        )
        for specs, child in zip(spec_lists, children)
    ]
    return vec, scalars


def test_reset_states_bit_identical():
    vec, scalars = _lockstep_pair()
    states = vec.reset()
    for k, env in enumerate(scalars):
        ref = env.reset()
        for i in range(env.n):
            assert (states[k, i] == ref[i]).all(), f"env {k} tenant {i}"


def test_step_states_rewards_bit_identical():
    vec, scalars = _lockstep_pair()
    vec.reset()
    for env in scalars:
        env.reset()
    act_rng = np.random.default_rng(7)
    num_actions = vec.action_space.num_actions
    for _t in range(12):
        padded = np.zeros((vec.num_envs, vec.n_max), dtype=np.int64)
        per_env = []
        for k, env in enumerate(scalars):
            actions = {
                i: int(act_rng.integers(0, num_actions)) for i in range(env.n)
            }
            per_env.append(actions)
            for i, a in actions.items():
                padded[k, i] = a
        states, rewards, done, info = vec.step(padded)
        for k, env in enumerate(scalars):
            ref_states, ref_rewards, ref_done, ref_info = env.step(per_env[k])
            assert done == ref_done
            for i in range(env.n):
                assert (states[k, i] == ref_states[i]).all()
                assert rewards[k, i] == ref_rewards[i]
                assert info["singles"][k, i] == ref_info["singles"][i]
        if done:
            break


def test_window_stats_bit_identical():
    vec, scalars = _lockstep_pair()
    vec.reset()
    for env in scalars:
        env.reset()
    padded = np.zeros((vec.num_envs, vec.n_max), dtype=np.int64)
    vec.step(padded)
    for k, env in enumerate(scalars):
        _s, _r, _d, ref_info = env.step({i: 0 for i in range(env.n)})
        for got, want in zip(vec.window_stats(k), ref_info["stats"]):
            assert got == want, f"env {k} vssd {got.vssd_id}"


def test_padded_lanes_inert():
    """Padded slots earn exact-zero rewards and stay masked out."""
    vec, _scalars = _lockstep_pair()
    vec.reset()
    padded = np.zeros((vec.num_envs, vec.n_max), dtype=np.int64)
    for _ in range(3):
        _states, rewards, _done, info = vec.step(padded)
        dead = ~vec.mask
        assert (rewards[dead] == 0.0).all()
        assert (info["singles"][dead] == 0.0).all()
    assert int(vec.mask.sum()) == vec.num_agents == sum(len(m) for m in MIXES)


def test_env_streams_independent():
    """Each env's trajectory depends only on its own stream: dropping a
    sibling from the fleet does not change the survivor's bits."""
    spec_lists = [_specs(names) for names in MIXES[:2]]
    children = np.random.SeedSequence(99).spawn(2)
    pair = VectorFastFleetEnv(
        spec_lists, rngs=[np.random.default_rng(c) for c in children]
    )
    solo = VectorFastFleetEnv(
        [spec_lists[1]], rngs=[np.random.default_rng(children[1])]
    )
    s_pair = pair.reset()
    s_solo = solo.reset()
    n1 = len(spec_lists[1])
    assert (s_pair[1, :n1] == s_solo[0, :n1]).all()
    pair_states, pair_rewards, _d, _i = pair.step(
        np.zeros((2, pair.n_max), dtype=np.int64)
    )
    solo_states, solo_rewards, _d, _i = solo.step(
        np.zeros((1, solo.n_max), dtype=np.int64)
    )
    assert (pair_states[1, :n1] == solo_states[0, :n1]).all()
    assert (pair_rewards[1, :n1] == solo_rewards[0, :n1]).all()


def test_lockstep_done_flag():
    vec = VectorFastFleetEnv(
        [_specs(MIXES[0])],
        rngs=[np.random.default_rng(0)],
        episode_windows=3,
    )
    vec.reset()
    padded = np.zeros((1, vec.n_max), dtype=np.int64)
    dones = [vec.step(padded)[2] for _ in range(3)]
    assert dones == [False, False, True]


def _mixed_fault_profiles(spec_lists):
    """Per-env fault profiles exercising every supported kind, with the
    second env deliberately fault-free (``None`` lane)."""
    profiles = []
    for k, specs in enumerate(spec_lists):
        channels = [spec.channels for spec in specs]
        if k == 1:
            profiles.append(None)
            continue
        faults = [
            FaultSpec("channel_slowdown", 2.0, 14.0, channel=0, factor=4.0),
            FaultSpec("channel_outage", 4.0, 10.0, channel=channels[0]),
            FaultSpec(
                "latency_spike", 0.0, 20.0, channel=0, extra_latency_us=8000.0
            ),
            FaultSpec("gc_storm", 6.0, 12.0, vssd="t0"),
        ]
        profiles.append(WindowFaultProfile(faults, channels))
    return profiles


def test_fault_schedule_bit_identical_to_scalar():
    """Satellite contract: an injected fault schedule leaves env ``k`` of
    the vector fleet bit-identical to a lone scalar env under the same
    profile — states, rewards, and every WindowStats field."""
    spec_lists = [_specs(names) for names in MIXES]
    profiles = _mixed_fault_profiles(spec_lists)
    children = np.random.SeedSequence(4321).spawn(len(spec_lists))
    vec = VectorFastFleetEnv(
        spec_lists,
        rngs=[np.random.default_rng(child) for child in children],
        episode_windows=10,
        fault_profiles=profiles,
    )
    scalars = [
        FastFleetEnv(
            [dataclasses.replace(spec) for spec in specs],
            rng=np.random.default_rng(child),
            episode_windows=10,
            fault_profile=profile,
        )
        for specs, child, profile in zip(spec_lists, children, profiles)
    ]
    states = vec.reset()
    for k, env in enumerate(scalars):
        ref = env.reset()
        for i in range(env.n):
            assert (states[k, i] == ref[i]).all(), f"reset env {k} tenant {i}"
    act_rng = np.random.default_rng(11)
    num_actions = vec.action_space.num_actions
    for _t in range(10):
        padded = np.zeros((vec.num_envs, vec.n_max), dtype=np.int64)
        per_env = []
        for k, env in enumerate(scalars):
            actions = {
                i: int(act_rng.integers(0, num_actions)) for i in range(env.n)
            }
            per_env.append(actions)
            for i, a in actions.items():
                padded[k, i] = a
        states, rewards, done, _info = vec.step(padded)
        for k, env in enumerate(scalars):
            ref_states, ref_rewards, ref_done, ref_info = env.step(per_env[k])
            assert done == ref_done
            for i in range(env.n):
                assert (states[k, i] == ref_states[i]).all(), f"env {k} tenant {i}"
                assert rewards[k, i] == ref_rewards[i]
            for got, want in zip(vec.window_stats(k), ref_info["stats"]):
                assert got == want, f"env {k} vssd {got.vssd_id}"
        if done:
            break


def test_fault_schedule_changes_outcomes():
    """The same streams without the profile produce different telemetry —
    the fault hook is live, not a no-op."""
    spec_lists = [_specs(MIXES[0])]
    profiles = _mixed_fault_profiles(spec_lists)
    runs = []
    for use_faults in (True, False):
        child = np.random.SeedSequence(777).spawn(1)[0]
        env = FastFleetEnv(
            [dataclasses.replace(spec) for spec in spec_lists[0]],
            rng=np.random.default_rng(child),
            episode_windows=8,
            fault_profile=profiles[0] if use_faults else None,
        )
        env.reset()
        total = 0.0
        for _ in range(8):
            _s, _r, _d, info = env.step({i: 0 for i in range(env.n)})
            total += sum(s.slo_violation_frac for s in info["stats"])
        runs.append(total)
    assert runs[0] != runs[1]
    assert runs[0] > runs[1]  # faults hurt


def test_fault_profile_tenant_mismatch_rejected():
    specs = _specs(MIXES[0])
    profile = WindowFaultProfile(
        [FaultSpec("gc_storm", 0.0, 5.0, vssd="t0")], [4, 4, 4]
    )
    with pytest.raises(ValueError):
        FastFleetEnv(specs, fault_profile=profile)
    with pytest.raises(ValueError):
        VectorFastFleetEnv(
            [specs], rngs=[np.random.default_rng(0)], fault_profiles=[profile]
        )


def test_pow4_matches_scalar_pow():
    values = np.random.default_rng(3).random((4, 5)) * 2.0
    reference = np.array(
        [[float(x) ** 4 for x in row] for row in values.tolist()]
    )
    assert (_pow4(values) == reference).all()


def test_rejects_empty_and_mismatched_inputs():
    with pytest.raises(ValueError):
        VectorFastFleetEnv([])
    with pytest.raises(ValueError):
        VectorFastFleetEnv([[]])
    with pytest.raises(ValueError):
        VectorFastFleetEnv(
            [_specs(MIXES[0])], rngs=[np.random.default_rng(0)] * 2
        )
