"""Tests for the per-vSSD RL agent."""

import numpy as np
import pytest

from repro.config import RLConfig
from repro.core.actionspace import ActionSpace
from repro.core.agent import FleetIoAgent
from repro.rl import PolicyValueNet
from repro.virt.vssd import Vssd


@pytest.fixture
def agent():
    config = RLConfig(batch_size=4)
    space = ActionSpace(60.0)
    net = PolicyValueNet(config.state_dim, space.num_actions, (8, 8))
    vssd = Vssd(0, "v", None, [0, 1])
    return FleetIoAgent(
        vssd, net, space, config=config, explore=False, finetune=True,
        finetune_interval=3,
    )


def _state(agent):
    return np.zeros(agent.config.state_dim)


def test_decide_records_pending(agent):
    action = agent.decide(_state(agent))
    assert 0 <= action < agent.action_space.num_actions
    assert agent._pending is not None


def test_observe_reward_fills_buffer(agent):
    agent.decide(_state(agent))
    agent.observe_reward(0.5)
    assert len(agent.buffer) == 1
    assert agent._pending is None
    assert agent.rewards_seen == [0.5]


def test_observe_without_pending_is_noop(agent):
    agent.observe_reward(1.0)
    assert len(agent.buffer) == 0


def test_finetune_runs_on_interval(agent):
    for window in range(6):
        agent.decide(_state(agent))
        agent.observe_reward(0.1)
        agent.end_window()
    # After 2 intervals of 3 windows with batch_size 4, at least one
    # update ran and the buffer was flushed.
    assert agent.trainer.optimizer.steps > 0
    assert len(agent.buffer) == 0


def test_greedy_mode_deterministic(agent):
    a = agent.decide(_state(agent))
    b = agent.decide(_state(agent))
    assert a == b


def test_explore_mode_uses_rng():
    config = RLConfig()
    space = ActionSpace(60.0)
    net = PolicyValueNet(config.state_dim, space.num_actions, (8, 8))
    vssd = Vssd(0, "v", None, [0])
    agent = FleetIoAgent(
        vssd, net, space, config=config, explore=True,
        rng=np.random.default_rng(0),
    )
    actions = {agent.decide(np.zeros(config.state_dim)) for _ in range(30)}
    assert len(actions) > 1


def test_default_alpha_is_unified(agent):
    assert agent.alpha == agent.config.unified_alpha


def test_mean_reward(agent):
    for reward in (1.0, 2.0, 3.0):
        agent.decide(_state(agent))
        agent.observe_reward(reward)
    assert agent.mean_reward() == pytest.approx(2.0)
    assert agent.mean_reward(last_n=1) == pytest.approx(3.0)


def test_flush_closes_open_path(agent):
    agent.decide(_state(agent))
    agent.observe_reward(0.5)
    agent.flush()
    assert agent.buffer.open_path_length == 0
