"""Tests for the profiling layer."""

import pickle

from repro.profiling import Profiler, format_profile, merge_profiles


def test_disabled_profiler_records_nothing():
    profiler = Profiler()
    token = profiler.begin()
    assert token == 0
    profiler.end("x", token)
    profiler.count("hits")
    assert profiler.timers() == {}
    assert profiler.counters() == {}


def test_enabled_scope_records_and_restores():
    profiler = Profiler()
    with profiler.enabled_scope():
        assert profiler.enabled
        with profiler.timer("section"):
            pass
        profiler.count("hits", 3)
    assert not profiler.enabled
    assert profiler.timers()["section"].calls == 1
    assert profiler.timers()["section"].total_ns >= 0
    assert profiler.counters()["hits"] == 3


def test_enabled_scope_restores_prior_enabled_state():
    profiler = Profiler()
    profiler.enable()
    with profiler.enabled_scope():
        pass
    assert profiler.enabled


def test_begin_end_accumulates_calls():
    profiler = Profiler()
    profiler.enable()
    for _ in range(5):
        token = profiler.begin()
        profiler.end("hot", token)
    assert profiler.timers()["hot"].calls == 5


def test_reset_clears_data():
    profiler = Profiler()
    profiler.enable()
    profiler.count("c")
    with profiler.timer("t"):
        pass
    profiler.reset()
    assert profiler.snapshot() == {"timers": {}, "counters": {}}


def test_snapshot_is_picklable():
    profiler = Profiler()
    profiler.enable()
    with profiler.timer("t"):
        pass
    profiler.count("c", 2)
    snap = pickle.loads(pickle.dumps(profiler.snapshot()))
    assert snap["timers"]["t"]["calls"] == 1
    assert snap["counters"]["c"] == 2


def test_declared_timer_appears_with_zero_calls():
    profiler = Profiler()
    profiler.declare("never.fired", "also.never")
    profiler.enable()
    with profiler.timer("hit"):
        pass
    snap = profiler.snapshot()
    assert snap["timers"]["never.fired"] == {"calls": 0, "total_ns": 0}
    assert snap["timers"]["also.never"] == {"calls": 0, "total_ns": 0}
    assert snap["timers"]["hit"]["calls"] == 1


def test_declared_timer_that_fires_reports_real_data():
    profiler = Profiler()
    profiler.declare("section")
    profiler.enable()
    with profiler.timer("section"):
        pass
    entry = profiler.snapshot()["timers"]["section"]
    assert entry["calls"] == 1
    assert entry["total_ns"] >= 0


def test_declared_names_survive_reset():
    profiler = Profiler()
    profiler.declare("sticky")
    profiler.enable()
    profiler.count("c")
    profiler.reset()
    snap = profiler.snapshot()
    assert snap["timers"] == {"sticky": {"calls": 0, "total_ns": 0}}
    assert snap["counters"] == {}


def test_format_profile_renders_zero_call_rows():
    profiler = Profiler()
    profiler.declare("quiet.section")
    text = format_profile(profiler.snapshot())
    assert "quiet.section" in text
    assert "         0" in text  # calls column


def test_merge_profiles_sums():
    a = {"timers": {"t": {"calls": 2, "total_ns": 100}}, "counters": {"c": 1}}
    b = {"timers": {"t": {"calls": 3, "total_ns": 50},
                    "u": {"calls": 1, "total_ns": 7}},
         "counters": {"c": 4, "d": 2}}
    merged = merge_profiles([a, b, {}, None])
    assert merged["timers"]["t"] == {"calls": 5, "total_ns": 150}
    assert merged["timers"]["u"] == {"calls": 1, "total_ns": 7}
    assert merged["counters"] == {"c": 5, "d": 2}


def test_format_profile_renders_sections_and_counters():
    snap = {
        "timers": {"loop": {"calls": 2, "total_ns": 2_000_000}},
        "counters": {"events": 9},
    }
    text = format_profile(snap, total_label="loop")
    assert "loop" in text
    assert "events" in text
    assert "100.0%" in text


def test_format_profile_empty():
    assert format_profile({}) == "(no profile data)"
