"""Property tests for channel timing under random operation mixes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd.channel import Channel


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write", "front_read", "front_write", "bg_write"]),
            st.integers(0, 3),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_timing_invariants(ops):
    """For any operation mix:

    * completions respect the physical service floor;
    * per-chip busy horizons never go backwards;
    * the charged busy time (``stats.busy_us``) exactly accounts every
      operation's read/write/transfer components, including the GC
      background discount;
    * the bus horizon is at least the charged transfer work (nothing
      rides for free) — idle gaps may push it later, never earlier.
    """
    config = SSDConfig(num_channels=1)
    sim = Simulator()
    channel = Channel(0, config, sim)
    last_chip_done = {}
    expected_busy = 0.0
    expected_transfer_work = 0.0
    floor_read = config.page_read_us + config.bus_transfer_us
    for op, chip in ops:
        if op in ("read", "front_read"):
            done = channel.service_read(chip, front=op.startswith("front"))
            assert done >= floor_read - 1e-9
            expected_busy += config.page_read_us + config.bus_transfer_us
            expected_transfer_work += config.bus_transfer_us
        elif op in ("write", "front_write"):
            done = channel.service_write(chip, front=op.startswith("front"))
            assert done >= config.bus_transfer_us + config.page_write_us - 1e-9
            expected_busy += config.page_write_us + config.bus_transfer_us
            expected_transfer_work += config.bus_transfer_us
        else:
            done = channel.service_write(chip, background=True)
            charged = config.bus_transfer_us * config.gc_bus_share
            expected_busy += config.page_write_us + charged
            expected_transfer_work += charged
        assert done > 0
        if chip in last_chip_done:
            assert channel._chip_busy_until[chip] >= last_chip_done[chip] - 1e-9
        last_chip_done[chip] = channel._chip_busy_until[chip]
    assert channel.stats.busy_us == pytest.approx(expected_busy)
    assert channel._bus_busy_until >= expected_transfer_work - 1e-9


@settings(max_examples=30, deadline=None)
@given(backlog=st.integers(0, 40))
def test_front_insertion_bounded_wait(backlog):
    """A front-inserted read on an *idle chip* waits at most one
    in-flight bus transfer plus its own, regardless of how deep the bus
    backlog is (the chip itself may of course still be programming —
    priority jumps the queue, not physics)."""
    config = SSDConfig(num_channels=1)
    channel = Channel(0, config, Simulator())
    busy_chips = [1 + i % (config.chips_per_channel - 1) for i in range(backlog)]
    for chip in busy_chips:
        channel.service_write(chip)
    done = channel.service_read(0, front=True)  # chip 0 stayed idle
    ceiling = config.page_read_us + 2 * config.bus_transfer_us
    assert done <= ceiling + 1e-9
