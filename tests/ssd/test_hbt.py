"""Tests for the Harvested Block Table."""

from repro.ssd.geometry import FlashBlock


def _block(index=0):
    return FlashBlock(0, 0, index, pages_per_block=4)


def test_mark_harvested_sets_flag_and_tracks(hbt):
    block = _block()
    hbt.mark_harvested(block)
    assert block.harvested_flag is True
    assert hbt.is_harvested(block.block_id)
    assert len(hbt) == 1


def test_mark_regular_clears(hbt):
    block = _block()
    hbt.mark_harvested(block)
    hbt.mark_regular(block)
    assert block.harvested_flag is False
    assert not hbt.is_harvested(block.block_id)
    assert len(hbt) == 0


def test_mark_regular_idempotent(hbt):
    block = _block()
    hbt.mark_regular(block)
    assert len(hbt) == 0


def test_mark_many(hbt):
    blocks = [_block(i) for i in range(5)]
    hbt.mark_many(blocks)
    assert len(hbt) == 5


def test_footprint_is_one_bit_per_block(hbt):
    # The paper: at most 0.5 MB for a 1 TB SSD with 4 MB blocks.
    blocks_in_1tb = (1 << 40) // (4 << 20)
    bits = hbt.footprint_bits(blocks_in_1tb)
    assert bits / 8 / (1 << 20) <= 0.5


def test_erase_then_hbt_stays_consistent(hbt):
    block = _block()
    hbt.mark_harvested(block)
    block.erase()  # erase clears the block-side flag
    hbt.mark_regular(block)
    assert not hbt.is_harvested(block.block_id)
