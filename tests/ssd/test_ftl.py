"""Tests for the FTL: mapping, striping, regions, capacity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.ftl import OutOfSpaceError, WriteRegion


def test_write_then_read_same_page(ftl):
    ftl.write_page(42)
    pointer = ftl.page_location(42)
    assert pointer is not None
    done, channel = ftl.read_page(42)
    assert channel == pointer.block.channel_id


def test_overwrite_invalidates_old_page(ftl):
    ftl.write_page(7)
    old = ftl.page_location(7)
    ftl.write_page(7)
    new = ftl.page_location(7)
    assert new != old
    assert old.block.page_lpns[old.page] is None


def test_writes_stripe_across_channels(ftl):
    channels = {ftl.write_page(lpn)[1] for lpn in range(16)}
    assert channels == {0, 1}


def test_writes_stripe_across_chips(ftl, ssd):
    for lpn in range(16):
        ftl.write_page(lpn)
    chips = {ftl.page_location(lpn).block.chip_id for lpn in range(16)}
    assert len(chips) == 2


def test_unmapped_read_serviced(ftl):
    done, channel = ftl.read_page(999)
    assert done > 0
    assert ftl.stats.unmapped_reads == 1


def test_mapped_pages_counter(ftl):
    for lpn in range(10):
        ftl.write_page(lpn)
    assert ftl.mapped_pages() == 10
    ftl.write_page(0)
    assert ftl.mapped_pages() == 10


def test_warm_fill_consumes_no_time(ftl, sim):
    ftl.warm_fill(range(64))
    assert sim.now == 0.0
    assert ftl.mapped_pages() == 64
    assert ftl.stats.host_writes == 0


def test_free_pages_decrease_with_writes(ftl, small_config):
    start = ftl.free_pages()
    ftl.warm_fill(range(32))
    assert ftl.free_pages() == start - 32


def test_free_fraction_overall_and_per_channel(ftl, small_config):
    assert ftl.free_fraction() == pytest.approx(1.0)
    assert ftl.free_fraction(0) == pytest.approx(1.0)
    assert ftl.free_fraction(3) == 0.0  # unowned channel
    ftl.warm_fill(range(small_config.pages_per_block * 4))
    assert ftl.free_fraction() < 1.0


def test_adopt_foreign_block_rejected(ftl, ssd):
    foreign = ssd.allocate_channels(9, [2])
    with pytest.raises(ValueError):
        ftl.adopt_blocks(foreign[:1])


def test_out_of_space_raises(small_config, sim):
    ssd = Ssd(small_config, sim)
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0]))
    total_pages = small_config.blocks_per_channel * small_config.pages_per_block
    with pytest.raises(OutOfSpaceError):
        # Unique LPNs: nothing invalidates, so GC cannot help.
        for lpn in range(total_pages + 1):
            ftl.write_page(lpn)


def test_trim_all_invalidates_everything(ftl):
    ftl.warm_fill(range(40))
    assert ftl.trim_all() == 40
    assert ftl.mapped_pages() == 0


def test_surrender_free_blocks(ftl, small_config):
    before = ftl.own_region.free_block_count_on(0)
    taken = ftl.surrender_free_blocks(0, 3)
    assert len(taken) == 3
    assert all(b.channel_id == 0 for b in taken)
    assert ftl.own_region.free_block_count_on(0) == before - 3
    # Surrendered blocks leave the ownership denominator too.
    assert ftl._own_blocks_per_channel[0] == before - 3


def test_surrender_more_than_available(ftl, small_config):
    available = small_config.blocks_per_channel
    taken = ftl.surrender_free_blocks(0, available + 10)
    assert len(taken) == available


def test_channel_count_includes_harvest_regions(ftl, ssd, hbt):
    assert ftl.channel_count() == 2
    blocks = ssd.allocate_channels(9, [2])
    region = WriteRegion("gsb:test", kind="harvest")
    region.add_blocks(blocks[:4])
    ftl.add_harvest_region(region)
    assert ftl.channel_count() == 3
    region.reclaiming = True
    assert ftl.channel_count() == 2


def test_write_channels_reflects_harvest(ftl, ssd):
    blocks = ssd.allocate_channels(9, [3])
    region = WriteRegion("gsb:test", kind="harvest")
    region.add_blocks(blocks[:4])
    ftl.add_harvest_region(region)
    assert 3 in ftl.write_channels()
    ftl.remove_harvest_region(region)
    assert 3 not in ftl.write_channels()


def test_writes_flow_into_harvest_region(ftl, ssd):
    blocks = ssd.allocate_channels(9, [3])
    region = WriteRegion("gsb:test", kind="harvest")
    region.add_blocks(blocks[:4])
    ftl.add_harvest_region(region)
    channels = {ftl.write_page(lpn)[1] for lpn in range(30)}
    assert 3 in channels
    # Data written into the harvest region carries the writer's id.
    used = [b for b in blocks[:4] if not b.is_free]
    assert used and all(b.writer == ftl.vssd_id for b in used)


def test_harvest_gc_scoped_to_region_membership(ftl, ssd, hbt):
    """Two harvest regions sharing a channel must not swap blocks via GC.

    Regression: ``_harvest_region_blocks`` used to select every block the
    vSSD wrote with the HBT flag set on the region's channels, so one
    region's recycle could erase the *other* region's block and re-add it
    to the wrong free pool.
    """
    blocks = ssd.allocate_channels(9, [3])
    r1 = WriteRegion("gsb:1", kind="harvest")
    r1.add_blocks(blocks[:2])
    r2 = WriteRegion("gsb:2", kind="harvest")
    r2.add_blocks(blocks[2:4])
    for block in blocks[:4]:
        hbt.mark_harvested(block)
    ftl.add_harvest_region(r1)
    ftl.add_harvest_region(r2)
    for region in (r1, r2):
        for lpn in range(4):
            region.frontier_block(3, writer=ftl.vssd_id).program(lpn)
    got1 = {id(b) for b in ftl._harvest_region_blocks(r1)}
    got2 = {id(b) for b in ftl._harvest_region_blocks(r2)}
    assert got1 and got1 <= {id(b) for b in blocks[:2]}
    assert got2 and got2 <= {id(b) for b in blocks[2:4]}


def test_recycle_returns_blocks_to_their_own_region(ftl, ssd, hbt):
    """Recycling one harvest region leaves a co-channel sibling intact."""
    blocks = ssd.allocate_channels(9, [3])
    r1 = WriteRegion("gsb:1", kind="harvest")
    r1.add_blocks(blocks[:2])
    r2 = WriteRegion("gsb:2", kind="harvest")
    r2.add_blocks(blocks[2:4])
    for block in blocks[:4]:
        hbt.mark_harvested(block)
    ftl.add_harvest_region(r1)
    ftl.add_harvest_region(r2)
    # Exhaust r1 on the shared channel, then invalidate everything so its
    # blocks become zero-cost GC victims.
    while True:
        block = r1.frontier_block(3, writer=ftl.vssd_id)
        if block is None:
            break
        block.invalidate(block.program(0))
    erased = ftl.recycle_region(r1, 3)
    assert erased > 0
    assert r1.free_block_count_on(3) == erased
    assert r2.free_block_count_on(3) == 2  # sibling untouched
    assert all(r1.contains(b) for b in blocks[:2])
    assert all(r2.contains(b) for b in blocks[2:4])


def test_reclaiming_region_not_written(ftl, ssd):
    blocks = ssd.allocate_channels(9, [3])
    region = WriteRegion("gsb:test", kind="harvest")
    region.add_blocks(blocks[:4])
    region.reclaiming = True
    ftl.add_harvest_region(region)
    channels = {ftl.write_page(lpn)[1] for lpn in range(30)}
    assert 3 not in channels


class TestWriteRegion:
    def _region_with_blocks(self, ssd, n=4, channel=0):
        blocks = [b for b in ssd.channels[channel].blocks[:n]]
        region = WriteRegion("r", kind="own")
        region.add_blocks(blocks)
        return region, blocks

    def test_rejects_non_free_block(self, ssd):
        block = ssd.channels[0].blocks[0]
        block.program(1)
        region = WriteRegion("r")
        with pytest.raises(ValueError):
            region.add_block(block)

    def test_frontier_rotates_chips(self, ssd, small_config):
        blocks = [ssd.channels[0].blocks[i] for i in (0, 8)]  # two chips
        region = WriteRegion("r")
        region.add_blocks(blocks)
        first = region.frontier_block(0, writer=1)
        second = region.frontier_block(0, writer=1)
        assert first is not second
        assert first.chip_id != second.chip_id

    def test_exhausted_channel_returns_none(self, ssd, small_config):
        region, blocks = self._region_with_blocks(ssd, n=1)
        for _ in range(small_config.pages_per_block):
            block = region.frontier_block(0, writer=1)
            block.program(0)
        assert region.frontier_block(0, writer=1) is None
        assert not region.can_write(0)

    def test_version_bumps_on_exhaustion(self, ssd, small_config):
        region, _ = self._region_with_blocks(ssd, n=1)
        before = region.version
        for _ in range(small_config.pages_per_block):
            region.frontier_block(0, writer=1).program(0)
        region.frontier_block(0, writer=1)
        assert region.version > before

    def test_free_pages_accounting(self, ssd, small_config):
        region, blocks = self._region_with_blocks(ssd, n=2)
        total = 2 * small_config.pages_per_block
        assert region.free_pages() == total
        region.frontier_block(0, writer=1).program(0)
        assert region.free_pages() == total - 1

    def test_take_free_blocks(self, ssd):
        region, _ = self._region_with_blocks(ssd, n=4)
        taken = region.take_free_blocks(0, 2)
        assert len(taken) == 2
        assert region.free_block_count() == 2

    def test_drain_free_blocks(self, ssd):
        region, _ = self._region_with_blocks(ssd, n=4)
        drained = region.drain_free_blocks()
        assert len(drained) == 4
        assert region.free_block_count() == 0
        assert region.free_pages() == 0

    def test_membership_tracking(self, ssd):
        region, blocks = self._region_with_blocks(ssd, n=4)
        assert all(region.contains(b) for b in blocks)
        taken = region.take_free_blocks(0, 2)
        assert not any(region.contains(b) for b in taken)
        drained = region.drain_free_blocks()
        assert not any(region.contains(b) for b in drained)

    def test_release_erased_recycles_live_harvest(self, ssd):
        blocks = [b for b in ssd.channels[0].blocks[:2]]
        region = WriteRegion("r", kind="harvest")
        region.add_blocks(blocks)
        block = region.frontier_block(0, writer=1)
        page = block.program(5)
        block.invalidate(page)
        for _ in range(block.free_pages):
            block.program(6)
            block.invalidate(block.write_ptr - 1)
        block.erase()
        before = region.free_block_count()
        region.release_erased(block)
        assert region.free_block_count() == before + 1

    def test_release_erased_reclaiming_calls_back(self, ssd):
        returned = []
        blocks = [b for b in ssd.channels[0].blocks[:1]]
        region = WriteRegion("r", kind="harvest", on_block_released=returned.append)
        region.add_blocks(blocks)
        block = region.frontier_block(0, writer=1)
        region.reclaiming = True
        region.release_erased(block)
        assert returned == [block]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WriteRegion("r", kind="weird")


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
def test_page_map_invariant_under_random_writes(lpns):
    """Invariant: every mapped LPN points at a page whose block records
    that LPN, and total valid pages equals mapped pages."""
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=4, pages_per_block=8
    )
    ssd = Ssd(config, Simulator())
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    for lpn in lpns:
        ftl.write_page(lpn)
    for lpn, pointer in ftl.page_map.items():
        assert pointer.block.page_lpns[pointer.page] == lpn
    total_valid = sum(
        b.valid_count for ch in ssd.channels for b in ch.blocks
    )
    assert total_valid == ftl.mapped_pages()
