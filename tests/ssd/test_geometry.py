"""Tests for flash blocks and page pointers."""

import pytest
from hypothesis import given, strategies as st

from repro.ssd.geometry import BlockState, FlashBlock, PagePointer


@pytest.fixture
def block():
    return FlashBlock(channel_id=1, chip_id=2, index=3, pages_per_block=8)


def test_new_block_is_free(block):
    assert block.state is BlockState.FREE
    assert block.valid_count == 0
    assert block.free_pages == 8


def test_program_is_sequential(block):
    assert block.program(100) == 0
    assert block.program(101) == 1
    assert block.state is BlockState.OPEN


def test_program_fills_block(block):
    for lpn in range(8):
        block.program(lpn)
    assert block.state is BlockState.FULL
    assert block.free_pages == 0


def test_program_full_block_raises(block):
    for lpn in range(8):
        block.program(lpn)
    with pytest.raises(RuntimeError):
        block.program(99)


def test_invalidate_reduces_valid_count(block):
    page = block.program(7)
    block.invalidate(page)
    assert block.valid_count == 0
    assert block.page_lpns[page] is None


def test_double_invalidate_raises(block):
    page = block.program(7)
    block.invalidate(page)
    with pytest.raises(RuntimeError):
        block.invalidate(page)


def test_valid_lpns_lists_live_pages(block):
    p0 = block.program(10)
    block.program(11)
    block.invalidate(p0)
    assert block.valid_lpns() == [(1, 11)]


def test_erase_requires_no_valid_data(block):
    block.program(5)
    with pytest.raises(RuntimeError):
        block.erase()


def test_erase_resets_block(block):
    page = block.program(5)
    block.invalidate(page)
    block.writer = 42
    block.harvested_flag = True
    block.erase()
    assert block.state is BlockState.FREE
    assert block.write_ptr == 0
    assert block.writer is None
    assert block.harvested_flag is False
    assert block.erase_count == 1


def test_block_id_tuple(block):
    assert block.block_id == (1, 2, 3)


def test_page_pointer_equality(block):
    a = PagePointer(block, 3)
    b = PagePointer(block, 3)
    c = PagePointer(block, 4)
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


@given(st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=16))
def test_valid_count_matches_live_pages(lpns):
    """Invariant: valid_count == number of non-None page entries."""
    block = FlashBlock(0, 0, 0, pages_per_block=16)
    for lpn in lpns:
        block.program(lpn)
    live = sum(1 for entry in block.page_lpns if entry is not None)
    assert block.valid_count == live == len(lpns)
    # Invalidate every other written page and recheck.
    for page in range(0, len(lpns), 2):
        block.invalidate(page)
    live = sum(1 for entry in block.page_lpns if entry is not None)
    assert block.valid_count == live
