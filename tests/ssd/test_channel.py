"""Tests for the channel timing model."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd.channel import Channel


@pytest.fixture
def cfg():
    return SSDConfig(num_channels=1, chips_per_channel=2, blocks_per_chip=4, pages_per_block=8)


@pytest.fixture
def channel(cfg):
    return Channel(0, cfg, Simulator())


def test_read_latency_uncontended(channel, cfg):
    done = channel.service_read(0)
    assert done == pytest.approx(cfg.page_read_us + cfg.bus_transfer_us)


def test_write_latency_uncontended(channel, cfg):
    done = channel.service_write(0)
    assert done == pytest.approx(cfg.bus_transfer_us + cfg.page_write_us)


def test_bus_serializes_transfers(channel, cfg):
    first = channel.service_write(0)
    second = channel.service_write(1)
    # The second transfer waits for the first on the shared bus.
    assert second >= first - cfg.page_write_us + cfg.bus_transfer_us


def test_chip_serializes_programs(channel, cfg):
    first = channel.service_write(0)
    second = channel.service_write(0)
    assert second >= first + cfg.page_write_us


def test_different_chips_overlap_programs(channel, cfg):
    channel.service_write(0)
    second = channel.service_write(1)
    third_same_chip = Channel(0, cfg, Simulator())
    third_same_chip.service_write(0)
    serial = third_same_chip.service_write(0)
    assert second < serial  # two chips beat one chip


def test_front_read_bypasses_backlog(channel, cfg):
    for _ in range(10):
        channel.service_write(0)
    normal = Channel(0, cfg, Simulator())
    for _ in range(10):
        normal.service_write(0)
    front_done = channel.service_read(1, front=True)
    normal_done = normal.service_read(1)
    assert front_done < normal_done


def test_front_read_not_slower_when_idle(channel, cfg):
    baseline = Channel(0, cfg, Simulator()).service_read(0)
    front = channel.service_read(0, front=True)
    assert front <= baseline + 1e-9


def test_front_write_not_slower_when_idle(cfg):
    a = Channel(0, cfg, Simulator()).service_write(0)
    b = Channel(0, cfg, Simulator()).service_write(0, front=True)
    assert b <= a + 1e-9


def test_front_insertion_conserves_bus_work(channel, cfg):
    channel.service_write(0)
    before = channel._bus_busy_until
    channel.service_read(1, front=True)
    assert channel._bus_busy_until == pytest.approx(before + cfg.bus_transfer_us)


def test_busy_horizon_grows_with_queued_work(channel, cfg):
    assert channel.busy_horizon_us() == 0.0
    channel.service_write(0)
    assert channel.busy_horizon_us() > 0.0


def test_has_capacity_false_past_horizon(channel, cfg):
    while channel.has_capacity():
        channel.service_write(0)
    assert channel.busy_horizon_us() >= cfg.max_queue_depth * cfg.bus_transfer_us


def test_queue_headroom_decreases(channel):
    start = channel.queue_headroom()
    channel.service_write(0)
    assert channel.queue_headroom() < start


def test_gc_occupies_chip_and_sets_flag(channel, cfg):
    done = channel.occupy_for_gc(0, migrate_reads=4, erases=1)
    assert channel.in_gc is True
    assert done >= cfg.block_erase_us
    channel.sim.run()
    assert channel.in_gc is False


def test_gc_background_bus_charge_is_discounted(channel, cfg):
    before = channel._bus_busy_until
    channel.occupy_for_gc(0, migrate_reads=10, erases=0)
    charged = channel._bus_busy_until - max(before, 0.0)
    assert charged == pytest.approx(10 * cfg.bus_transfer_us * cfg.gc_bus_share)


def test_background_write_discounts_bus(cfg):
    a = Channel(0, cfg, Simulator())
    a.service_write(0, background=True)
    b = Channel(0, cfg, Simulator())
    b.service_write(0)
    assert a._bus_busy_until < b._bus_busy_until


def test_stats_accumulate(channel):
    channel.service_read(0)
    channel.service_write(1)
    channel.occupy_for_gc(0, migrate_reads=2, erases=1)
    assert channel.stats.pages_read == 1
    assert channel.stats.pages_written == 1
    assert channel.stats.gc_pages_migrated == 2
    assert channel.stats.gc_erases == 1
    assert channel.stats.gc_busy_us > 0


def test_release_below_zero_raises(channel):
    channel.acquire(2)
    channel.release(2)
    with pytest.raises(RuntimeError):
        channel.release(1)
