"""Tests for garbage collection: triggers, victim priority, copy-back."""

import pytest

from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl
from repro.ssd.ftl import WriteRegion
from repro.ssd.geometry import BlockState


@pytest.fixture
def gc_setup():
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=4, pages_per_block=8
    )
    sim = Simulator()
    ssd = Ssd(config, sim)
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    return config, sim, ssd, ftl


def _overwrite(ftl, working_set, writes):
    for i in range(writes):
        ftl.write_page(i % working_set)


def test_gc_triggers_under_overwrite(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    _overwrite(ftl, working_set=total_pages // 4, writes=total_pages * 2)
    assert ftl.stats.gc_runs > 0
    assert ftl.stats.blocks_erased > 0


def test_gc_keeps_device_writable_indefinitely(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    # Four full device overwrites of a half-size working set.
    _overwrite(ftl, working_set=total_pages // 2, writes=total_pages * 4)
    assert ftl.mapped_pages() == total_pages // 2


def test_gc_preserves_data(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    ws = total_pages // 4
    _overwrite(ftl, working_set=ws, writes=total_pages * 3)
    # Every mapped page still resolves and block entries agree.
    for lpn in range(ws):
        pointer = ftl.page_location(lpn)
        assert pointer is not None
        assert pointer.block.page_lpns[pointer.page] == lpn


def test_write_amplification_reported(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    _overwrite(ftl, working_set=total_pages // 3, writes=total_pages * 3)
    assert ftl.stats.write_amplification >= 1.0
    assert ftl.stats.gc_writes == ftl.stats.gc_reads


def test_run_gc_skips_all_valid_regular_blocks(gc_setup):
    config, sim, ssd, ftl = gc_setup
    # Fill one block fully with unique (still valid) data.
    ftl.warm_fill(range(config.pages_per_block))
    erased = ftl.run_gc(0)
    # Nothing worth collecting: all-valid regular blocks are skipped.
    mapped_before = ftl.mapped_pages()
    assert mapped_before == config.pages_per_block
    assert erased == 0


def test_victim_priority_prefers_hbt_flagged(gc_setup):
    config, sim, ssd, ftl = gc_setup
    # Create FULL blocks (striping opens 4 frontiers, so write enough to
    # fill several blocks): one regular with few valid pages, one flagged.
    ftl.warm_fill(range(config.pages_per_block * 8))
    full_blocks = [
        b for ch in ssd.channels for b in ch.blocks if b.state is BlockState.FULL
    ]
    assert len(full_blocks) >= 2
    regular, flagged = full_blocks[0], full_blocks[1]
    # Invalidate most of the regular block (prime victim by valid count).
    for page, lpn in regular.valid_lpns()[:-1]:
        ftl.write_page(lpn)
    ftl.hbt.mark_harvested(flagged)
    victim = ftl._select_own_victim(flagged.channel_id)
    if victim is not None and victim.channel_id == flagged.channel_id:
        assert victim.harvested_flag or victim is flagged


def test_gc_charges_channel_time(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    _overwrite(ftl, working_set=total_pages // 3, writes=total_pages * 3)
    agg = ssd.aggregate_stats()
    assert agg.gc_busy_us > 0
    assert agg.gc_erases == ftl.stats.blocks_erased


def test_recycle_region_returns_blocks_to_gsb():
    config = SSDConfig(
        num_channels=3, chips_per_channel=2, blocks_per_chip=4, pages_per_block=8
    )
    ssd = Ssd(config, Simulator())
    ftl = VssdFtl(0, ssd)
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    donor_blocks = ssd.allocate_channels(9, [2])
    # Build a harvest region on channel 2 (owned by 9, written by 0).
    region = WriteRegion("gsb:r", kind="harvest")
    usable = donor_blocks[:2]
    for b in usable:
        ftl.hbt.mark_harvested(b)
    region.add_blocks(usable)
    ftl.add_harvest_region(region)
    # Fill the region with data, then overwrite so it can be recycled.
    lpns = list(range(10_000, 10_000 + 4 * config.pages_per_block))
    wrote_region = False
    for lpn in lpns * 3:
        _done, channel = ftl.write_page(lpn)
        wrote_region = wrote_region or channel == 2
    assert wrote_region
    # Recycled blocks stay in the gSB: flagged harvested or freshly free.
    assert all(b.harvested_flag or b.is_free for b in usable)
    # And the region itself either has free blocks or open frontiers.
    assert region.can_write(2) or region.free_block_count() >= 0


def test_gc_victims_exclude_frontier_blocks(gc_setup):
    config, sim, ssd, ftl = gc_setup
    ftl.warm_fill(range(4))  # opens frontier blocks
    frontier_ids = ftl.own_region.frontier_blocks()
    victim = ftl._select_own_victim(0)
    if victim is not None:
        assert id(victim) not in frontier_ids


def test_urgent_gc_recovers_space(gc_setup):
    config, sim, ssd, ftl = gc_setup
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    ws = int(total_pages * 0.7)
    # Consume nearly everything, then overwrite: urgent GC must reclaim.
    for i in range(int(total_pages * 1.5)):
        ftl.write_page(i % ws)
    assert ftl.mapped_pages() == ws
