"""Tests for the shared SSD device and block allocation."""

import pytest



def test_allocate_channels_grants_all_blocks(ssd, small_config):
    blocks = ssd.allocate_channels(7, [0, 1])
    assert len(blocks) == 2 * small_config.blocks_per_channel
    assert all(b.owner == 7 for b in blocks)


def test_allocate_channels_skips_owned_blocks(ssd):
    ssd.allocate_channels(1, [0])
    again = ssd.allocate_channels(2, [0])
    assert again == []


def test_striped_allocation_counts(ssd, small_config):
    blocks = ssd.allocate_blocks_striped(3, [0, 1, 2, 3], blocks_per_channel=4)
    assert len(blocks) == 16
    for channel_id in range(4):
        assert sum(1 for b in blocks if b.channel_id == channel_id) == 4


def test_striped_allocation_spreads_chips(ssd, small_config):
    blocks = ssd.allocate_blocks_striped(3, [0], blocks_per_channel=4)
    chips = {b.chip_id for b in blocks}
    assert len(chips) == small_config.chips_per_channel


def test_striped_allocation_insufficient_raises(ssd, small_config):
    ssd.allocate_channels(1, [0])
    with pytest.raises(ValueError):
        ssd.allocate_blocks_striped(2, [0], blocks_per_channel=1)


def test_two_tenants_share_a_channel(ssd, small_config):
    half = small_config.blocks_per_channel // 2
    a = ssd.allocate_blocks_striped(1, [0], blocks_per_channel=half)
    b = ssd.allocate_blocks_striped(2, [0], blocks_per_channel=half)
    assert {blk.owner for blk in a} == {1}
    assert {blk.owner for blk in b} == {2}


def test_release_all(ssd):
    ssd.allocate_channels(1, [0, 1])
    released = ssd.release_all(1)
    assert released > 0
    assert ssd.channels_owned_by(1) == []


def test_channels_owned_by(ssd):
    ssd.allocate_channels(5, [2, 3])
    assert ssd.channels_owned_by(5) == [2, 3]


def test_free_blocks_of(ssd, small_config):
    ssd.allocate_channels(1, [0])
    free = ssd.free_blocks_of(1, 0)
    assert len(free) == small_config.blocks_per_channel


def test_total_bandwidth_scales_with_channels(ssd, small_config):
    assert ssd.total_write_bandwidth_mbps == pytest.approx(
        small_config.num_channels * small_config.channel_write_bandwidth_mbps
    )


def test_aggregate_stats_sums_channels(ssd):
    ssd.channels[0].service_read(0)
    ssd.channels[1].service_write(0)
    agg = ssd.aggregate_stats()
    assert agg.pages_read == 1
    assert agg.pages_written == 1


def test_any_in_gc_scoped_to_channels(ssd):
    ssd.channels[2].occupy_for_gc(0, migrate_reads=1, erases=1)
    assert ssd.any_in_gc([2]) is True
    assert ssd.any_in_gc([0, 1]) is False
    assert ssd.any_in_gc() is True
