"""Tests for wear tracking and wear-aware block selection."""


from repro.config import SSDConfig
from repro.sim import Simulator
from repro.ssd import Ssd, VssdFtl


def _world(wear_aware):
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=8, pages_per_block=8
    )
    ssd = Ssd(config, Simulator())
    ftl = VssdFtl(0, ssd)
    ftl.own_region.wear_aware = wear_aware
    ftl.adopt_blocks(ssd.allocate_channels(0, [0, 1]))
    return config, ssd, ftl


def _churn(config, ftl, rounds=6):
    total_pages = 2 * config.blocks_per_channel * config.pages_per_block
    working_set = total_pages // 3
    for i in range(total_pages * rounds):
        ftl.write_page(i % working_set)


def test_wear_summary_counts_erases():
    config, ssd, ftl = _world(wear_aware=False)
    assert ssd.wear_summary()["max"] == 0
    _churn(config, ftl)
    summary = ssd.wear_summary()
    assert summary["max"] > 0
    assert summary["blocks"] == config.total_blocks
    assert summary["mean"] > 0


def test_wear_summary_per_tenant():
    config, ssd, ftl = _world(wear_aware=False)
    _churn(config, ftl)
    own = ssd.wear_summary(vssd_id=0)
    foreign = ssd.wear_summary(vssd_id=42)
    assert own["max"] > 0
    assert foreign["blocks"] == 0


def test_wear_aware_reduces_spread():
    """Least-worn-first block selection narrows the erase-count spread
    relative to FIFO selection under identical churn."""
    spreads = {}
    for wear_aware in (False, True):
        config, ssd, ftl = _world(wear_aware)
        _churn(config, ftl, rounds=8)
        spreads[wear_aware] = ssd.wear_summary(vssd_id=0)["spread"]
    assert spreads[True] <= spreads[False]


def test_wear_accumulates_monotonically():
    config, ssd, ftl = _world(wear_aware=True)
    _churn(config, ftl, rounds=2)
    first = ssd.wear_summary()["mean"]
    _churn(config, ftl, rounds=2)
    assert ssd.wear_summary()["mean"] > first


def test_wear_aware_config_flag():
    config = SSDConfig(
        num_channels=2, chips_per_channel=2, blocks_per_chip=8,
        pages_per_block=8, wear_aware_allocation=True,
    )
    ssd = Ssd(config, Simulator())
    ftl = VssdFtl(0, ssd)
    assert ftl.own_region.wear_aware is True
